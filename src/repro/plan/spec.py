"""Declarative serving-scenario sweep specifications.

A :class:`PlanSpec` describes a capacity-planning sweep without running it:
one or more named :class:`TenantMix` es (each a list of
:class:`~repro.serve.Workload` keyword dicts — declarative so the spec
pickles cheaply to worker processes) crossed with grids over **replicas x
dispatch policy x dynamic batching (max batch size, timeout) x queue
capacity x arrival process**.  ``scenarios()`` enumerates the cartesian
product as :class:`Scenario` objects in a deterministic order (nested
for-loops in field order, mix outermost), which is what makes a sweep's
CSV/JSON output byte-identical no matter how many workers evaluate it.

Validation is eager, mirroring :class:`~repro.dse.SweepSpec`: a typo'd
policy name, an unknown backend, an empty grid or an invalid tenant spec
fails when the spec is constructed, before any simulation starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Tuple

from ..api.backends import BACKEND_NAMES
from ..serve.autoscale import parse_admission, parse_autoscaler
from ..serve.carbon import CarbonIntensity
from ..serve.cluster import POLICY_NAMES
from ..serve.faults import FaultSchedule
from ..serve.power import PowerModel
from ..serve.workload import Workload

__all__ = ["TenantMix", "Scenario", "PlanSpec", "ARRIVAL_NAMES"]

#: Arrival-process conveniences a scenario can name (plus ``trace:PATH``).
ARRIVAL_NAMES: Tuple[str, ...] = ("poisson", "bursty", "constant", "diurnal")


@dataclass(frozen=True)
class TenantMix:
    """A named set of tenants, declaratively.

    ``tenants`` holds keyword dicts for :class:`~repro.serve.Workload` (one
    per tenant) rather than built workloads: dicts of names and scalars
    pickle to worker processes without dragging resolved models or datasets
    along.  Construction validates every tenant eagerly by building the
    workloads once.
    """

    name: str
    tenants: Tuple[Mapping, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("mix name must be a non-empty string")
        object.__setattr__(
            self, "tenants", tuple(dict(tenant) for tenant in self.tenants)
        )
        if not self.tenants:
            raise ValueError(f"mix {self.name!r} needs at least one tenant")
        self.workloads()  # eager validation via Workload/InferenceRequest

    def workloads(self) -> List[Workload]:
        """Fresh :class:`Workload` objects for this mix (cheap to build)."""
        return [Workload(**tenant) for tenant in self.tenants]


@dataclass(frozen=True)
class Scenario:
    """One grid point of a plan sweep: a full cluster + traffic configuration."""

    index: int
    mix: str
    arrival: str
    num_replicas: int
    policy: str
    max_batch_size: int
    batch_timeout_s: float
    queue_capacity: Optional[int]
    #: Autoscaler spec string (``reactive:max=8,...``) or ``None`` (static).
    autoscale: Optional[str] = None
    #: Fault-schedule string (``fail@...`` / ``random:...``) or ``None``.
    fault: Optional[str] = None
    #: Admission-control string (``carbon_waiting:...`` / ``queue=N``) or ``None``.
    admission: Optional[str] = None
    #: Carbon-intensity trace string (``diurnal`` / ``constant:420``) or ``None``.
    carbon_trace: Optional[str] = None
    #: Cluster-wide dispatch power cap in watts, or ``None`` (uncapped).
    power_cap_w: Optional[float] = None

    def describe(self) -> str:
        capacity = "inf" if self.queue_capacity is None else str(self.queue_capacity)
        text = (
            f"{self.mix}/{self.arrival}: {self.num_replicas}x {self.policy}, "
            f"batch<= {self.max_batch_size}/{self.batch_timeout_s * 1e6:.0f}us, "
            f"queue {capacity}"
        )
        if self.autoscale is not None:
            text += f", autoscale {self.autoscale}"
        if self.fault is not None:
            text += f", fault {self.fault}"
        if self.admission is not None:
            text += f", admission {self.admission}"
        if self.carbon_trace is not None:
            text += f", carbon {self.carbon_trace}"
        if self.power_cap_w is not None:
            text += f", cap {self.power_cap_w:g}W"
        return text


@dataclass(frozen=True)
class PlanSpec:
    """Declarative description of one serving-scenario sweep.

    Attributes
    ----------
    mixes:
        The tenant mixes to plan for (unique names).
    backend:
        Registered inference backend every replica instantiates.
    replicas / policies / max_batch_sizes / batch_timeouts_s /
    queue_capacities / arrivals:
        The grids.  ``queue_capacities`` entries may be ``None``
        (unbounded); ``arrivals`` entries are ``poisson`` / ``bursty`` /
        ``constant`` or ``trace:PATH``.
    autoscalers / faults:
        Dynamic-cluster grids, both defaulting to ``(None,)`` (static).
        ``autoscalers`` entries are autoscaler spec strings
        (``reactive:max=8,delay=2e-3`` — see
        :func:`~repro.serve.parse_autoscaler`) or ``None``; ``faults``
        entries are fault-schedule strings (``fail@0.01:r0;...`` or
        ``random:mtbf=...,mttr=...`` — see
        :meth:`~repro.serve.FaultSchedule.parse`) or ``None``.  Any
        non-``None`` entry switches the sweep's rows to the dynamic column
        set (``shed``, ``peak_replicas``, measured ``replica_seconds``).
    admissions / carbon_traces / power_caps:
        Carbon/power grids, all defaulting to ``(None,)`` (off).
        ``admissions`` entries are admission-control strings
        (``carbon_waiting:threshold=350`` / ``queue=64`` — see
        :func:`~repro.serve.parse_admission`) or ``None``;
        ``carbon_traces`` entries are carbon-trace strings (``diurnal`` /
        ``constant:420`` / ``trace:PATH`` — see
        :meth:`~repro.serve.CarbonIntensity.parse`) or ``None``;
        ``power_caps`` entries are watt budgets (> 0) or ``None``.  Any
        non-``None`` entry (or an explicit ``power`` model) widens the
        sweep's rows with the carbon columns (``grid_energy_j``,
        ``carbon_gco2``) and switches to the dynamic column set.
    power:
        Replica power-model string (``busy=2.0`` /
        ``idle=...,busy=...,provision=...`` — see
        :meth:`~repro.serve.PowerModel.parse`) applied to every scenario,
        or ``None`` to derive a model from the measured per-request energy
        whenever a carbon trace or power cap demands one.
    rate_rps:
        Total offered request rate, split across a mix's tenants by their
        ``share``.  ``None`` derives one rate per mix from the measured
        service time: ``utilisation x max(replicas) / mean_service_s`` — a
        load that stresses the largest pool of the sweep at the target
        utilisation, held constant across the grid so scenarios stay
        comparable.
    utilisation:
        Target utilisation used when deriving the rate.
    duration_s:
        Simulated traffic horizon per scenario.
    seed:
        Load-generator master seed (scenarios are bit-reproducible).
    mode:
        ``"exact"`` (array-backed reports, the oracle) or ``"sketch"``
        (streaming load generation + online accumulators; scenario rows
        carry percentile estimates within the sketches' documented error
        but counts/drops/utilisation stay exact).  See
        :meth:`~repro.serve.Cluster.serve_stream`.
    """

    mixes: Tuple[TenantMix, ...]
    backend: str = "flowgnn"
    replicas: Tuple[int, ...] = (1, 2, 4)
    policies: Tuple[str, ...] = ("round_robin", "edf")
    max_batch_sizes: Tuple[int, ...] = (1,)
    batch_timeouts_s: Tuple[float, ...] = (0.0,)
    queue_capacities: Tuple[Optional[int], ...] = (None,)
    arrivals: Tuple[str, ...] = ("poisson",)
    autoscalers: Tuple[Optional[str], ...] = (None,)
    faults: Tuple[Optional[str], ...] = (None,)
    admissions: Tuple[Optional[str], ...] = (None,)
    carbon_traces: Tuple[Optional[str], ...] = (None,)
    power_caps: Tuple[Optional[float], ...] = (None,)
    power: Optional[str] = None
    rate_rps: Optional[float] = None
    utilisation: float = 0.7
    duration_s: float = 0.05
    seed: int = 0
    mode: str = "exact"

    def __post_init__(self) -> None:
        object.__setattr__(self, "mixes", tuple(self.mixes))
        for name in (
            "replicas",
            "policies",
            "max_batch_sizes",
            "batch_timeouts_s",
            "queue_capacities",
            "arrivals",
            "autoscalers",
            "faults",
            "admissions",
            "carbon_traces",
            "power_caps",
        ):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not self.mixes:
            raise ValueError("PlanSpec needs at least one tenant mix")
        names = [mix.name for mix in self.mixes]
        if len(set(names)) != len(names):
            raise ValueError(f"mix names must be unique; got {names}")
        object.__setattr__(self, "backend", str(self.backend).lower())
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; registered: {BACKEND_NAMES}"
            )
        for grid_name in (
            "replicas",
            "policies",
            "max_batch_sizes",
            "batch_timeouts_s",
            "queue_capacities",
            "arrivals",
            "autoscalers",
            "faults",
            "admissions",
            "carbon_traces",
            "power_caps",
        ):
            if not getattr(self, grid_name):
                raise ValueError(f"grid {grid_name!r} is empty")
        if any(count < 1 for count in self.replicas):
            raise ValueError("every replicas value must be >= 1")
        for policy in self.policies:
            if policy not in POLICY_NAMES:
                raise ValueError(
                    f"unknown policy {policy!r}; registered: {POLICY_NAMES}"
                )
        if any(size < 1 for size in self.max_batch_sizes):
            raise ValueError("every max_batch_size must be >= 1")
        if any(timeout < 0 for timeout in self.batch_timeouts_s):
            raise ValueError("every batch timeout must be >= 0")
        if any(
            capacity is not None and capacity < 1
            for capacity in self.queue_capacities
        ):
            raise ValueError("queue capacities must be >= 1 or None (unbounded)")
        for arrival in self.arrivals:
            if (
                arrival not in ARRIVAL_NAMES
                and not arrival.startswith("diurnal:")
                and not arrival.startswith("trace:")
            ):
                raise ValueError(
                    f"unknown arrival process {arrival!r}; use one of "
                    f"{ARRIVAL_NAMES}, diurnal:low=,high=,period= or trace:PATH"
                )
        if self.rate_rps is not None and not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive (or None to derive it)")
        if not 0 < self.utilisation <= 2.0:
            raise ValueError("utilisation must be in (0, 2]")
        if not self.duration_s > 0:
            raise ValueError("duration_s must be positive")
        # Eager dynamic-grid validation: a typo'd autoscaler key or a fault
        # event naming a replica the *smallest* pool of the sweep lacks
        # fails at construction, before any simulation starts.
        for text in self.autoscalers:
            if text is not None:
                parse_autoscaler(text)
        for text in self.faults:
            if text is not None:
                FaultSchedule.parse(
                    text,
                    num_replicas=min(self.replicas),
                    horizon_s=self.duration_s,
                )
        for text in self.admissions:
            if text is not None:
                parse_admission(text)
        for text in self.carbon_traces:
            if text is not None:
                CarbonIntensity.parse(text)
        for cap in self.power_caps:
            if cap is not None and not cap > 0:
                raise ValueError("every power cap must be > 0 watts (or None)")
        if self.power is not None:
            PowerModel.parse(self.power)
        if self.mode not in ("exact", "sketch"):
            raise ValueError(
                f"unknown mode {self.mode!r}; use 'exact' or 'sketch'"
            )

    # -- enumeration ----------------------------------------------------------
    def scenarios(self) -> Iterator[Scenario]:
        """Every grid point, in deterministic nested-loop order."""
        index = 0
        for mix in self.mixes:
            for arrival in self.arrivals:
                for num_replicas in self.replicas:
                    for policy in self.policies:
                        for max_batch_size in self.max_batch_sizes:
                            for batch_timeout_s in self.batch_timeouts_s:
                                for queue_capacity in self.queue_capacities:
                                    for autoscale in self.autoscalers:
                                        for fault in self.faults:
                                            for admission in self.admissions:
                                                for carbon in self.carbon_traces:
                                                    for cap in self.power_caps:
                                                        yield Scenario(
                                                            index=index,
                                                            mix=mix.name,
                                                            arrival=arrival,
                                                            num_replicas=num_replicas,
                                                            policy=policy,
                                                            max_batch_size=max_batch_size,
                                                            batch_timeout_s=batch_timeout_s,
                                                            queue_capacity=queue_capacity,
                                                            autoscale=autoscale,
                                                            fault=fault,
                                                            admission=admission,
                                                            carbon_trace=carbon,
                                                            power_cap_w=cap,
                                                        )
                                                        index += 1

    def num_scenarios(self) -> int:
        return (
            len(self.mixes)
            * len(self.arrivals)
            * len(self.replicas)
            * len(self.policies)
            * len(self.max_batch_sizes)
            * len(self.batch_timeouts_s)
            * len(self.queue_capacities)
            * len(self.autoscalers)
            * len(self.faults)
            * len(self.admissions)
            * len(self.carbon_traces)
            * len(self.power_caps)
        )

    @property
    def has_dynamics(self) -> bool:
        """Whether any grid point runs the dynamic (lifecycle-aware) loop.

        Spec-level on purpose: the flag decides the row schema for the
        *whole* sweep (CSV headers come from the first row), so static and
        dynamic scenarios in one sweep share one column set.
        """
        return (
            any(a is not None for a in self.autoscalers)
            or any(f is not None for f in self.faults)
            or any(a is not None for a in self.admissions)
            or self.has_carbon
        )

    @property
    def has_carbon(self) -> bool:
        """Whether any grid point carries power/carbon accounting.

        Spec-level for the same schema reason as :attr:`has_dynamics` —
        power/carbon runs always take the dynamic loop, so ``has_carbon``
        implies ``has_dynamics``.
        """
        return (
            self.power is not None
            or any(c is not None for c in self.carbon_traces)
            or any(p is not None for p in self.power_caps)
        )

    def mix_by_name(self, name: str) -> TenantMix:
        for mix in self.mixes:
            if mix.name == name:
                return mix
        raise KeyError(f"no tenant mix named {name!r}")

    def describe(self) -> str:
        return (
            f"PlanSpec(backend={self.backend!r}, "
            f"mixes={[mix.name for mix in self.mixes]}, "
            f"arrivals={list(self.arrivals)}, replicas={list(self.replicas)}, "
            f"policies={list(self.policies)}, "
            f"max_batch={list(self.max_batch_sizes)}, "
            f"timeouts_us={[round(t * 1e6, 1) for t in self.batch_timeouts_s]}, "
            f"queues={list(self.queue_capacities)}, "
            + (
                f"autoscalers={list(self.autoscalers)}, "
                f"faults={list(self.faults)}, "
                if self.has_dynamics
                else ""
            )
            + (
                f"admissions={list(self.admissions)}, "
                f"carbon={list(self.carbon_traces)}, "
                f"power_caps={list(self.power_caps)}, "
                f"power={self.power!r}, "
                if self.has_carbon or any(a is not None for a in self.admissions)
                else ""
            )
            + f"{self.num_scenarios()} scenarios)"
        )
