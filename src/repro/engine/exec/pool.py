"""Contiguous-chunk ``multiprocessing`` pool executor (the historical path).

Work is split with :func:`~repro.engine.contiguous_chunks` (or into fixed
``chunk_items``-sized chunks) and drained with ordered ``imap``: chunk
results arrive as they complete — which is what lets progress stream — but
are yielded in submission order.  Maximal per-worker cache locality for
homogeneous items, at the cost of load balancing.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, List, Optional, Sequence, Tuple

from ..chunks import contiguous_chunks
from ..job import Job
from .base import Executor, OnRow
from .worker import _evaluate_indexed_chunk, _init_worker

__all__ = ["PoolExecutor"]


class PoolExecutor(Executor):
    """One contiguous chunk per worker over a ``multiprocessing.Pool``."""

    name = "pool"

    def __init__(self, workers: int, chunk_items: Optional[int] = None) -> None:
        self.workers = int(workers)
        self.chunk_items = None if chunk_items is None else int(chunk_items)

    def execute(
        self,
        job: Job,
        context: Any,
        pending: Sequence[Tuple[int, Any]],
        on_row: OnRow,
    ) -> List[Any]:
        pending = list(pending)
        if self.chunk_items is None:
            chunks = contiguous_chunks(pending, self.workers)
        else:
            chunks = [
                pending[start : start + self.chunk_items]
                for start in range(0, len(pending), self.chunk_items)
            ]
        info_by_worker: dict = {}
        with multiprocessing.Pool(
            processes=min(self.workers, len(chunks)),
            initializer=_init_worker,
            initargs=(job, context),
        ) as pool:
            for indices, rows, worker_id, info in pool.imap(
                _evaluate_indexed_chunk, chunks
            ):
                for index, row in zip(indices, rows):
                    on_row(index, row)
                if info is not None:
                    # collect() reports cumulative worker state; keep only
                    # the latest report per worker so statistics aggregate
                    # without double counting when one worker runs several
                    # chunks.
                    info_by_worker[worker_id] = info
        return list(info_by_worker.values())
