"""The :class:`Executor` protocol: how an :class:`~repro.engine.Engine` runs.

An executor is handed the *pending* work — ``(index, item)`` pairs in
enumeration order, minus anything a checkpoint already journaled — and a
parent-side ``on_row(index, row)`` callback.  It may evaluate items in any
order, on any transport (in-process, a ``multiprocessing`` pool, spawned
worker processes over a spooled directory), as long as it calls ``on_row``
exactly once per pending item.  The engine reassembles rows by enumeration
index, so every executor is byte-identical to every other by construction:
ordering lives in the engine, transport lives here.

``on_row`` is only ever invoked from the dispatching (parent) process — it
feeds progress callbacks and the checkpoint journal, neither of which is
safe to touch from a worker.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from ..job import Job

__all__ = ["EXECUTOR_NAMES", "Executor", "OnRow"]

#: The executor names accepted by :class:`~repro.engine.Engine` and the CLI's
#: ``--executor`` flag, in documentation order.
EXECUTOR_NAMES = ("serial", "pool", "steal", "dispatcher")

#: ``on_row(index, row)`` — called in the parent once per completed item.
OnRow = Callable[[int, Any], None]


class Executor:
    """Evaluates pending ``(index, item)`` pairs of a prepared job."""

    #: Human-readable transport name (matches ``EXECUTOR_NAMES`` entries).
    name = "abstract"

    def execute(
        self,
        job: Job,
        context: Any,
        pending: Sequence[Tuple[int, Any]],
        on_row: OnRow,
    ) -> List[Any]:
        """Evaluate every pending item; return the worker ``collect()`` infos.

        Must call ``on_row(index, row)`` in the parent process exactly once
        per pending item (in any completion order).  Returns the list of
        non-``None`` worker statistics, at most one per worker (cumulative —
        the latest report per worker wins).
        """
        raise NotImplementedError
