"""Dispatcher/scheduler executor: spawned workers over a spooled work dir.

The fuzzbench experiment-infrastructure shape (``dispatcher.py`` /
``scheduler.py`` / measure workers): the parent is a *dispatcher* that
spools the job, its context and every pending task into a work directory,
spawns free-running worker processes, and then runs a *scheduler* loop that
polls for completed results.  Workers share nothing with the parent but the
directory:

.. code-block:: text

    work_dir/
      shared.pkl                 pickled (job, context), read once per worker
      tasks/item-00000042.pkl    one (index, item) per pending task
      claimed/item-...pkl.<pid>  a task atomically renamed by its claimer
      results/item-00000042.pkl  (index, row), tmp-written then renamed
      stats/worker-<pid>.pkl     the worker's final collect() report

Claiming is ``os.rename`` (atomic on POSIX): exactly one worker wins each
task, with no locks and no queue.  Results are written to a ``.tmp`` path
and ``os.replace``d into place, so the scheduler only ever reads complete
files.  Because every transport step is a file, swapping the directory for
a shared filesystem (or an object store) turns this into multi-host fan-out
without touching the engine — and a crashed run leaves its work dir as a
post-mortem.

If any worker dies mid-task its claimed item never produces a result; the
scheduler detects the shortfall once all workers have exited and raises
rather than returning a silently truncated run.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import tempfile
import time
from typing import Any, List, Optional, Sequence, Set, Tuple

from ..job import Job
from .base import Executor, OnRow

__all__ = ["DispatcherExecutor"]

_SHARED = "shared.pkl"
_TASKS = "tasks"
_CLAIMED = "claimed"
_RESULTS = "results"
_STATS = "stats"


def _task_name(index: int) -> str:
    return f"item-{index:08d}.pkl"


def _atomic_write(path: str, payload: Any) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _load(path: str) -> Any:
    with open(path, "rb") as handle:
        return pickle.load(handle)


def _worker_main(work_dir: str) -> None:
    """A free-running worker: claim tasks by rename until none remain."""
    job, context = _load(os.path.join(work_dir, _SHARED))
    job.setup(context)
    tasks_dir = os.path.join(work_dir, _TASKS)
    claimed_dir = os.path.join(work_dir, _CLAIMED)
    results_dir = os.path.join(work_dir, _RESULTS)
    while True:
        names = sorted(os.listdir(tasks_dir))
        if not names:
            break
        progressed = False
        for name in names:
            claim = os.path.join(claimed_dir, f"{name}.{os.getpid()}")
            try:
                os.rename(os.path.join(tasks_dir, name), claim)
            except OSError:
                continue  # another worker won the rename race
            index, item = _load(claim)
            _atomic_write(os.path.join(results_dir, name), (index, job.evaluate(item)))
            progressed = True
        if not progressed:
            # Lost every race this pass; let the winners drain the directory.
            time.sleep(0.002)
    info = job.collect()
    if info is not None:
        _atomic_write(
            os.path.join(work_dir, _STATS, f"worker-{os.getpid()}.pkl"), info
        )


class DispatcherExecutor(Executor):
    """Spool tasks to a directory, spawn workers, poll results back."""

    name = "dispatcher"

    def __init__(
        self,
        workers: int,
        work_dir: Optional[str] = None,
        poll_s: float = 0.01,
    ) -> None:
        self.workers = max(1, int(workers))
        self.work_dir = work_dir
        self.poll_s = float(poll_s)

    def execute(
        self,
        job: Job,
        context: Any,
        pending: Sequence[Tuple[int, Any]],
        on_row: OnRow,
    ) -> List[Any]:
        owns_dir = self.work_dir is None
        work_dir = self.work_dir or tempfile.mkdtemp(prefix="repro-dispatch-")
        try:
            return self._dispatch(job, context, list(pending), on_row, work_dir)
        finally:
            if owns_dir:
                shutil.rmtree(work_dir, ignore_errors=True)

    def _dispatch(
        self,
        job: Job,
        context: Any,
        pending: List[Tuple[int, Any]],
        on_row: OnRow,
        work_dir: str,
    ) -> List[Any]:
        for sub in (_TASKS, _CLAIMED, _RESULTS, _STATS):
            os.makedirs(os.path.join(work_dir, sub), exist_ok=True)
        _atomic_write(os.path.join(work_dir, _SHARED), (job, context))
        tasks_dir = os.path.join(work_dir, _TASKS)
        for index, item in pending:
            _atomic_write(os.path.join(tasks_dir, _task_name(index)), (index, item))

        context_mp = multiprocessing.get_context()
        procs = [
            context_mp.Process(target=_worker_main, args=(work_dir,), daemon=True)
            for _ in range(min(self.workers, len(pending)))
        ]
        for proc in procs:
            proc.start()

        results_dir = os.path.join(work_dir, _RESULTS)
        seen: Set[str] = set()
        while len(seen) < len(pending):
            self._drain(results_dir, seen, on_row)
            if len(seen) >= len(pending):
                break
            if not any(proc.is_alive() for proc in procs):
                self._drain(results_dir, seen, on_row)
                if len(seen) < len(pending):
                    raise RuntimeError(
                        "dispatcher workers exited with "
                        f"{len(pending) - len(seen)} of {len(pending)} results "
                        f"missing (work dir: {work_dir})"
                    )
                break
            time.sleep(self.poll_s)
        for proc in procs:
            proc.join()

        stats_dir = os.path.join(work_dir, _STATS)
        return [
            _load(os.path.join(stats_dir, name))
            for name in sorted(os.listdir(stats_dir))
            if name.endswith(".pkl")
        ]

    @staticmethod
    def _drain(results_dir: str, seen: Set[str], on_row: OnRow) -> None:
        for name in sorted(os.listdir(results_dir)):
            if name in seen or not name.endswith(".pkl"):
                continue  # .tmp.<pid> files are still being written
            index, row = _load(os.path.join(results_dir, name))
            on_row(index, row)
            seen.add(name)
