"""Work-stealing executor: single-item dispatch from a shared queue.

Every pending item is its own task on the pool's shared queue
(``chunksize=1``), so an idle worker always steals the next item rather
than waiting behind a straggler's pre-assigned chunk — the right trade for
wildly uneven items (whole paper experiments, mixed-size plan scenarios).
Results are drained *unordered* for latency, then reassembled by
enumeration index in the engine, so the output is byte-identical to the
serial and chunked-pool executors.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, List, Sequence, Tuple

from ..job import Job
from .base import Executor, OnRow
from .worker import _evaluate_one, _init_worker

__all__ = ["WorkStealingExecutor"]


class WorkStealingExecutor(Executor):
    """One item per task, ``imap_unordered`` drain, index reassembly."""

    name = "steal"

    def __init__(self, workers: int) -> None:
        self.workers = int(workers)

    def execute(
        self,
        job: Job,
        context: Any,
        pending: Sequence[Tuple[int, Any]],
        on_row: OnRow,
    ) -> List[Any]:
        pending = list(pending)
        info_by_worker: dict = {}
        with multiprocessing.Pool(
            processes=min(self.workers, len(pending)),
            initializer=_init_worker,
            initargs=(job, context),
        ) as pool:
            for index, row, worker_id, info in pool.imap_unordered(
                _evaluate_one, pending, chunksize=1
            ):
                on_row(index, row)
                if info is not None:
                    info_by_worker[worker_id] = info
        return list(info_by_worker.values())
