"""Pluggable executors: how an :class:`~repro.engine.Engine` fans out.

Four transports behind one :class:`Executor` protocol, all byte-identical
by construction (rows are reassembled by enumeration index in the engine):

* :class:`SerialExecutor` — in-process, no pool; the reference transport;
* :class:`PoolExecutor` — contiguous chunks over a ``multiprocessing``
  pool with ordered ``imap`` drain (the historical engine path);
* :class:`WorkStealingExecutor` — single-item dispatch from the pool's
  shared queue, unordered drain; stragglers never block idle workers;
* :class:`DispatcherExecutor` — fuzzbench-style dispatcher/scheduler split:
  tasks spooled to a work directory, free-running spawned workers claim
  them by atomic rename, the parent polls results back.

Plus the :class:`Checkpoint` journal (and :class:`CheckpointSlice` window)
that makes any executor's run resumable after a kill.

Like the rest of :mod:`repro.engine`, this package imports nothing from the
rest of :mod:`repro` at module scope.
"""

from .base import EXECUTOR_NAMES, Executor, OnRow
from .checkpoint import Checkpoint, CheckpointSlice, MemoryCheckpoint
from .dispatcher import DispatcherExecutor
from .pool import PoolExecutor
from .serial import SerialExecutor
from .steal import WorkStealingExecutor

__all__ = [
    "EXECUTOR_NAMES",
    "Checkpoint",
    "CheckpointSlice",
    "DispatcherExecutor",
    "Executor",
    "MemoryCheckpoint",
    "OnRow",
    "PoolExecutor",
    "SerialExecutor",
    "WorkStealingExecutor",
    "make_executor",
]


def make_executor(name, workers, chunk_items=None):
    """Build the named executor (see :data:`EXECUTOR_NAMES`)."""
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return PoolExecutor(workers, chunk_items=chunk_items)
    if name == "steal":
        return WorkStealingExecutor(workers)
    if name == "dispatcher":
        return DispatcherExecutor(workers)
    raise ValueError(
        f"unknown executor {name!r}; expected one of {', '.join(EXECUTOR_NAMES)}"
    )
