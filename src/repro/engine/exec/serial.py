"""In-process executor: no pool, no pickling — the reference transport."""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from ..job import Job
from .base import Executor, OnRow

__all__ = ["SerialExecutor"]


class SerialExecutor(Executor):
    """Evaluates every pending item in the parent process, in order.

    This is the same code path a pool worker runs (``setup`` then
    ``evaluate`` per item), which is what makes a 1-worker run byte-identical
    to an N-worker run: there is nothing the pool does that this doesn't.
    """

    name = "serial"

    def execute(
        self,
        job: Job,
        context: Any,
        pending: Sequence[Tuple[int, Any]],
        on_row: OnRow,
    ) -> List[Any]:
        job.setup(context)
        for index, item in pending:
            on_row(index, job.evaluate(item))
        info = job.collect()
        return [info] if info is not None else []
