"""Pool-worker plumbing shared by the pool and work-stealing executors.

The job and its prepared context cross the process boundary exactly once
per worker, through the pool initializer — never once per task.  Worker
results carry the originating enumeration indices and the worker pid so the
parent can reassemble rows in enumeration order and keep only each worker's
*latest* cumulative ``collect()`` report.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence, Tuple

from ..job import Job

__all__ = ["_evaluate_indexed_chunk", "_evaluate_one", "_init_worker"]

# Worker-process state, installed once per pool worker by ``_init_worker``.
_WORKER_JOB: Optional[Job] = None


def _init_worker(job: Job, context: Any) -> None:
    global _WORKER_JOB
    job.setup(context)
    _WORKER_JOB = job


def _evaluate_indexed_chunk(
    chunk: Sequence[Tuple[int, Any]],
) -> Tuple[List[int], List, int, Optional[Any]]:
    """Evaluate a contiguous chunk of ``(index, item)`` pairs."""
    indices = [index for index, _ in chunk]
    rows = [_WORKER_JOB.evaluate(item) for _, item in chunk]
    return indices, rows, os.getpid(), _WORKER_JOB.collect()


def _evaluate_one(task: Tuple[int, Any]) -> Tuple[int, Any, int, Optional[Any]]:
    """Evaluate a single ``(index, item)`` pair (work-stealing dispatch)."""
    index, item = task
    return index, _WORKER_JOB.evaluate(item), os.getpid(), _WORKER_JOB.collect()
