"""Checkpoint journals: what the engine replays to resume a killed run.

A checkpoint is anything with two methods:

* ``completed_rows() -> Dict[int, row]`` — the already-journaled rows,
  keyed by enumeration index, read once at the start of a run;
* ``append(index, row)`` — journal one completed item; called from the
  parent process as each row arrives, so a kill at any instant loses at
  most the not-yet-appended items and never tears a row.

The engine re-enumerates the job (enumeration is deterministic by the
:class:`~repro.engine.Job` contract), skips completed indices, and feeds
the journaled rows back into their slots — so a resumed run's output is
byte-identical to an uninterrupted one.

This module keeps the engine package dependency-free: the durable
implementation (SQLite ``checkpoints`` table, keyed by run id + config
signature + git SHA) lives in :class:`repro.results.StoreCheckpoint`; here
are only the in-memory journal used by engine-level tests and the window
view that lets one journal span several engine jobs.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["Checkpoint", "CheckpointSlice", "MemoryCheckpoint"]


class Checkpoint:
    """Duck-typed journal of completed ``(index, row)`` pairs."""

    def completed_rows(self) -> Dict[int, Any]:
        """Journaled rows keyed by enumeration index."""
        raise NotImplementedError

    def append(self, index: int, row: Any) -> None:
        """Journal one completed item (must be atomic per item)."""
        raise NotImplementedError


class MemoryCheckpoint(Checkpoint):
    """An in-process journal — survives nothing, pins the resume contract."""

    def __init__(self) -> None:
        self.rows: Dict[int, Any] = {}

    def completed_rows(self) -> Dict[int, Any]:
        return dict(self.rows)

    def append(self, index: int, row: Any) -> None:
        self.rows[index] = row


class CheckpointSlice(Checkpoint):
    """A window ``[offset, offset + length)`` of a larger journal.

    The dse runner executes one engine job per model×dataset group, but one
    *run* (and therefore one resumable journal) spans all groups.  A slice
    translates a group's local enumeration indices to positions in the
    run-wide item order, so each group job sees only its own window.
    """

    def __init__(self, inner: Checkpoint, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError("checkpoint slice offset/length must be >= 0")
        self.inner = inner
        self.offset = int(offset)
        self.length = int(length)

    def completed_rows(self) -> Dict[int, Any]:
        end = self.offset + self.length
        return {
            index - self.offset: row
            for index, row in self.inner.completed_rows().items()
            if self.offset <= index < end
        }

    def append(self, index: int, row: Any) -> None:
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} outside slice of length {self.length}")
        self.inner.append(self.offset + index, row)
