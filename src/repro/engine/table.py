"""The shared result-table surface behind every sweep and experiment result.

``SweepResult`` (dse), ``PlanResult`` (plan) and ``ExperimentResult`` (eval)
used to re-implement column extraction, row filtering, rendering and export
independently — and inconsistently (``SweepResult`` had no JSON export at
all).  :class:`ResultTable` is the one implementation they all subclass:
anything with a ``rows`` attribute of primitive-valued dicts gets the full
``column`` / ``find`` / ``best`` / ``pareto`` / ``render`` / ``to_csv`` /
``to_dict`` / ``to_json`` set, and a regression test pins that the three
tables expose exactly this shared surface.

Rendering helpers are imported lazily so this module (and the whole
:mod:`repro.engine` package) stays import-cycle-free.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

__all__ = ["ResultTable"]


class ResultTable:
    """Base class for row-oriented results.

    Subclasses (typically dataclasses) declare a ``rows`` attribute holding
    a list of dicts of primitive values, and may override:

    * ``OBJECTIVES`` — default minimisation objectives for :meth:`pareto`;
    * ``DEFAULT_TITLE`` — the title :meth:`render` uses when none is given;
    * :meth:`to_dict` — the JSON payload (the base implementation exports
      the rows plus the row count).
    """

    rows: List[Dict]

    #: Default objectives for :meth:`pareto`; empty means the caller must
    #: pass objectives explicitly.
    OBJECTIVES: Sequence[str] = ()

    #: Default metric for :meth:`best`; ``None`` means the caller must pass
    #: a metric explicitly.
    DEFAULT_METRIC: Optional[str] = None

    #: Title :meth:`render` falls back to.
    DEFAULT_TITLE: str = ""

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def column(self, key: str) -> List:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]

    def find(self, **criteria) -> List[Dict]:
        """Rows whose values match every ``key=value`` criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def best(self, metric: Optional[str] = None) -> Dict:
        """The row minimising ``metric`` (ties: first in row order)."""
        if metric is None:
            metric = self.DEFAULT_METRIC
        if metric is None:
            raise ValueError(
                f"{type(self).__name__} declares no default metric; "
                "pass best(metric=...) explicitly"
            )
        if not self.rows:
            raise ValueError(f"{type(self).__name__} has no rows")
        return min(self.rows, key=lambda row: row[metric])

    def pareto(self, objectives: Optional[Sequence[str]] = None) -> List[Dict]:
        """Non-dominated rows under ``objectives`` (all minimised)."""
        from ..dse.pareto import pareto_frontier

        if objectives is None:
            objectives = self.OBJECTIVES
        if not objectives:
            raise ValueError(
                f"{type(self).__name__} declares no default objectives; "
                "pass pareto(objectives=...) explicitly"
            )
        return pareto_frontier(self.rows, objectives)

    def render(self, title: str = "") -> str:
        """Aligned text table of every row."""
        from ..eval.tables import render_dict_table

        return render_dict_table(self.rows, title=title or self.DEFAULT_TITLE)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Rows as CSV text; when ``path`` is given, also write the file."""
        from ..eval.tables import render_csv

        text = render_csv(self.rows)
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def to_dict(self) -> Dict:
        """JSON-serialisable payload; subclasses add their own metadata."""
        return {"num_rows": self.num_rows, "rows": [dict(row) for row in self.rows]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """:meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, default=str)
