"""The execution engine shared by every workload in the repo.

Three subsystems used to carry their own worker-pool plumbing: the
design-space sweeps (:mod:`repro.dse`), the serving-scenario sweeps
(:mod:`repro.plan`) and the paper-experiment harness (:mod:`repro.eval`).
This package is the one implementation they all now run on:

* :class:`Job` — the declarative work protocol: ``enumerate()`` the work
  items, ``prepare()`` shared context once in the parent (e.g. a
  pre-measured :class:`~repro.api.MeasurementCache` snapshot), ``setup()``
  per-worker state, ``evaluate(item)`` one row, ``collect()`` worker-side
  statistics;
* :class:`Engine` — runs any job over a pluggable executor (``serial`` /
  ``pool`` / ``steal`` / ``dispatcher``, see :mod:`repro.engine.exec`) with
  per-worker context injection, enumeration-order row reassembly,
  incremental completed/total progress callbacks and optional
  :class:`Checkpoint` journaling for kill-and-resume runs.  A 1-worker and
  an N-worker run of the same job — under any executor — produce identical
  rows in identical order;
* :func:`contiguous_chunks` — the deterministic chunking primitive
  (previously copy-pasted between the dse and plan runners);
* :class:`ResultTable` — the base class behind ``SweepResult``,
  ``PlanResult`` and ``ExperimentResult``: one shared implementation of
  ``column`` / ``find`` / ``best`` / ``pareto`` / ``render`` / ``to_csv`` /
  ``to_dict`` / ``to_json``.

The package deliberately imports nothing from the rest of :mod:`repro` at
module scope, so any layer can build on it without import-order cycles.
"""

from .chunks import contiguous_chunks
from .engine import Engine, EngineRun, ProgressCallback
from .exec import (
    EXECUTOR_NAMES,
    Checkpoint,
    CheckpointSlice,
    DispatcherExecutor,
    Executor,
    MemoryCheckpoint,
    PoolExecutor,
    SerialExecutor,
    WorkStealingExecutor,
    make_executor,
)
from .job import Job
from .table import ResultTable

__all__ = [
    "EXECUTOR_NAMES",
    "Checkpoint",
    "CheckpointSlice",
    "DispatcherExecutor",
    "Engine",
    "EngineRun",
    "Executor",
    "Job",
    "MemoryCheckpoint",
    "PoolExecutor",
    "ProgressCallback",
    "ResultTable",
    "SerialExecutor",
    "WorkStealingExecutor",
    "contiguous_chunks",
    "make_executor",
]
