"""The engine: one enumeration/checkpoint/assembly loop over any executor.

:class:`Engine` executes any :class:`~repro.engine.Job` and owns everything
that must be deterministic — enumeration order, row assembly, progress and
the checkpoint journal — while delegating the transport to a pluggable
:class:`~repro.engine.exec.Executor`:

* ``serial`` — in-process, no pool (the reference transport);
* ``pool`` — contiguous chunks over a ``multiprocessing`` pool, the
  historical engine path: job + context pickled **once per worker** through
  the pool initializer, ordered ``imap`` drain;
* ``steal`` — single-item dispatch from the pool's shared queue, so an idle
  worker always steals the next item instead of waiting behind a
  straggler's chunk;
* ``dispatcher`` — fuzzbench-style dispatcher/scheduler split over a
  spooled work directory of spawned worker processes.

Rows are reassembled by enumeration index in the parent, so a 1-worker and
an N-worker run — and any pair of executors — produce identical rows in
identical order, by construction.

Passing a ``checkpoint`` journal to :meth:`Engine.run` makes the run
resumable: each completed row is appended to the journal as it arrives, and
a later run with the same job and journal re-enumerates, skips the
journaled indices and slots their rows straight into the output —
byte-identical to an uninterrupted run.

``chunk_items`` selects the pool chunking policy.  The default (one
contiguous chunk per worker) maximises per-worker cache locality and is
right for homogeneous items; ``chunk_items=1`` dispatches items one at a
time, which load-balances wildly uneven items (e.g. whole paper
experiments) at the cost of more task pickling.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Union

from .exec import EXECUTOR_NAMES, Checkpoint, Executor, SerialExecutor, make_executor
from .job import Job

__all__ = ["Engine", "EngineRun"]

#: ``progress(completed_items, total_items)`` — invoked from the parent
#: process only, monotonically, ending at ``(total, total)``.  Resumed runs
#: start the completed count at the number of journaled items.
ProgressCallback = Callable[[int, int], None]


@dataclass
class EngineRun:
    """Outcome of one engine execution: rows in enumeration order."""

    rows: List = field(default_factory=list)
    infos: List = field(default_factory=list)
    num_items: int = 0
    elapsed_s: float = 0.0
    #: Items replayed from the checkpoint journal rather than evaluated.
    resumed_items: int = 0


class Engine:
    """Runs :class:`~repro.engine.Job` s over a pluggable executor.

    Parameters
    ----------
    workers:
        Worker count.  ``None`` uses ``os.cpu_count()``; values below 2 run
        the pool-backed executors in-process (no pool, identical rows).
    chunk_items:
        ``None`` (default) splits pool work into one contiguous chunk per
        worker; a positive integer dispatches contiguous chunks of that many
        items, trading task overhead for load balancing of uneven items.
        Only the ``pool`` executor chunks; ``steal`` and ``dispatcher``
        always dispatch single items.
    executor:
        One of :data:`~repro.engine.exec.EXECUTOR_NAMES` (``"serial"``,
        ``"pool"``, ``"steal"``, ``"dispatcher"``), or a pre-built
        :class:`~repro.engine.exec.Executor` instance (used as given, no
        in-process fallback).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_items: Optional[int] = None,
        executor: Union[str, Executor] = "pool",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = int(workers)
        if chunk_items is not None and int(chunk_items) < 1:
            raise ValueError("chunk_items must be a positive integer or None")
        self.chunk_items = None if chunk_items is None else int(chunk_items)
        if isinstance(executor, str) and executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {executor!r}; "
                f"expected one of {', '.join(EXECUTOR_NAMES)}"
            )
        self.executor = executor

    def run(
        self,
        job: Job,
        progress: Optional[ProgressCallback] = None,
        checkpoint: Optional[Checkpoint] = None,
    ) -> EngineRun:
        """Evaluate every item of ``job``; rows come back in item order.

        With a ``checkpoint``, already-journaled items are skipped and their
        rows replayed, and every newly completed row is appended to the
        journal before it counts as done.
        """
        started = time.perf_counter()
        items = list(job.enumerate())
        if not items:
            return EngineRun(elapsed_s=time.perf_counter() - started)

        completed = {} if checkpoint is None else dict(checkpoint.completed_rows())
        pending = [
            (index, item) for index, item in enumerate(items) if index not in completed
        ]
        rows_by_index = dict(completed)
        total = len(items)
        done = len(completed)

        def on_row(index: int, row: Any) -> None:
            nonlocal done
            rows_by_index[index] = row
            if checkpoint is not None:
                checkpoint.append(index, row)
            done += 1
            if progress is not None:
                progress(done, total)

        infos: List = []
        if pending:
            context = job.prepare()
            infos = self._select_executor(len(pending)).execute(
                job, context, pending, on_row
            )
        rows = [rows_by_index[index] for index in range(total)]
        return EngineRun(
            rows=rows,
            infos=infos,
            num_items=total,
            elapsed_s=time.perf_counter() - started,
            resumed_items=len(completed),
        )

    def _select_executor(self, num_pending: int) -> Executor:
        if not isinstance(self.executor, str):
            return self.executor
        # The pool-backed transports degrade to in-process execution when a
        # pool could not help (one worker, or a single pending item): same
        # code path as a worker, same rows, no pickling.
        if self.executor in ("pool", "steal") and (
            self.workers < 2 or num_pending < 2
        ):
            return SerialExecutor()
        if self.executor == "serial":
            return SerialExecutor()
        return make_executor(self.executor, self.workers, self.chunk_items)
