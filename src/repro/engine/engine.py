"""The engine: one pool/chunking/worker-init implementation for every job.

:class:`Engine` executes any :class:`~repro.engine.Job` with the fan-out
discipline the dse and plan runners independently evolved, now in one place:

* the job and its prepared context are pickled **once per worker** through
  the pool initializer, never once per task;
* work is split with :func:`~repro.engine.contiguous_chunks` and results are
  drained with ``imap`` (ordered), so rows come back in enumeration order no
  matter which worker finishes first — a 1-worker and an N-worker run are
  row-identical by construction;
* completed counts stream back to an optional ``progress`` callback as each
  chunk (or each item, for in-process runs) finishes;
* worker counts below two, or jobs with fewer than two items, run in-process
  with no pool at all — same code path as a worker, same rows.

``chunk_items`` selects the chunking policy.  The default (one contiguous
chunk per worker) maximises per-worker cache locality and is right for
homogeneous items; ``chunk_items=1`` dispatches items one at a time, which
load-balances wildly uneven items (e.g. whole paper experiments) at the cost
of more task pickling.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .chunks import contiguous_chunks
from .job import Job

__all__ = ["Engine", "EngineRun"]

#: ``progress(completed_items, total_items)`` — invoked from the parent
#: process only, monotonically, ending at ``(total, total)``.
ProgressCallback = Callable[[int, int], None]


# Worker-process state, installed once per pool worker by ``_init_worker``
# so the job (and its shared context) crosses the process boundary exactly
# once per worker instead of once per chunk.
_WORKER_JOB: Optional[Job] = None


def _init_worker(job: Job, context: Any) -> None:
    global _WORKER_JOB
    job.setup(context)
    _WORKER_JOB = job


def _evaluate_chunk(items: List) -> Tuple[List, int, Optional[Any]]:
    rows = [_WORKER_JOB.evaluate(item) for item in items]
    # The worker id rides along so the parent can keep only each worker's
    # *latest* report: collect() returns cumulative worker state, and a fast
    # worker may process several chunks.
    return rows, os.getpid(), _WORKER_JOB.collect()


@dataclass
class EngineRun:
    """Outcome of one engine execution: rows in enumeration order."""

    rows: List = field(default_factory=list)
    infos: List = field(default_factory=list)
    num_items: int = 0
    elapsed_s: float = 0.0


class Engine:
    """Runs :class:`~repro.engine.Job` s over a shared worker pool.

    Parameters
    ----------
    workers:
        ``multiprocessing`` worker count.  ``None`` uses ``os.cpu_count()``;
        values below 2 run in-process (no pool, identical rows).
    chunk_items:
        ``None`` (default) splits work into one contiguous chunk per worker;
        a positive integer dispatches contiguous chunks of that many items,
        trading task overhead for load balancing of uneven items.
    """

    def __init__(
        self, workers: Optional[int] = None, chunk_items: Optional[int] = None
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = int(workers)
        if chunk_items is not None and int(chunk_items) < 1:
            raise ValueError("chunk_items must be a positive integer or None")
        self.chunk_items = None if chunk_items is None else int(chunk_items)

    def run(self, job: Job, progress: Optional[ProgressCallback] = None) -> EngineRun:
        """Evaluate every item of ``job``; rows come back in item order."""
        started = time.perf_counter()
        items = list(job.enumerate())
        if not items:
            return EngineRun(elapsed_s=time.perf_counter() - started)
        context = job.prepare()
        if self.workers < 2 or len(items) < 2:
            rows, infos = self._run_in_process(job, context, items, progress)
        else:
            rows, infos = self._run_pool(job, context, items, progress)
        return EngineRun(
            rows=rows,
            infos=infos,
            num_items=len(items),
            elapsed_s=time.perf_counter() - started,
        )

    # -- execution paths ------------------------------------------------------
    def _run_in_process(
        self,
        job: Job,
        context: Any,
        items: List,
        progress: Optional[ProgressCallback],
    ) -> Tuple[List, List]:
        job.setup(context)
        rows = []
        for index, item in enumerate(items):
            rows.append(job.evaluate(item))
            if progress is not None:
                progress(index + 1, len(items))
        info = job.collect()
        return rows, ([info] if info is not None else [])

    def _run_pool(
        self,
        job: Job,
        context: Any,
        items: List,
        progress: Optional[ProgressCallback],
    ) -> Tuple[List, List]:
        if self.chunk_items is None:
            chunks = contiguous_chunks(items, self.workers)
        else:
            chunks = [
                items[start : start + self.chunk_items]
                for start in range(0, len(items), self.chunk_items)
            ]
        rows: List = []
        info_by_worker: dict = {}
        completed = 0
        with multiprocessing.Pool(
            processes=min(self.workers, len(chunks)),
            initializer=_init_worker,
            initargs=(job, context),
        ) as pool:
            # imap (ordered) rather than map: chunk results arrive as they
            # complete, which is what lets progress stream incrementally,
            # but are yielded in submission order, which is what keeps the
            # assembled rows deterministic.
            for chunk_rows, worker_id, info in pool.imap(_evaluate_chunk, chunks):
                rows.extend(chunk_rows)
                if info is not None:
                    # collect() reports cumulative worker state; keep only
                    # the latest report per worker so statistics aggregate
                    # without double counting when one worker runs several
                    # chunks.
                    info_by_worker[worker_id] = info
                completed += len(chunk_rows)
                if progress is not None:
                    progress(completed, len(items))
        return rows, list(info_by_worker.values())
