"""Deterministic work splitting for parallel fan-out."""

from __future__ import annotations

from typing import List

__all__ = ["contiguous_chunks"]


def contiguous_chunks(items: List, count: int) -> List[List]:
    """Split ``items`` into at most ``count`` contiguous, near-equal chunks.

    Contiguity is what keeps parallel runs deterministic: every chunk
    preserves enumeration order, so reassembling chunk results in order
    reproduces the serial result exactly.  Sizes differ by at most one, no
    chunk is empty (except for the single ``[[]]`` chunk of an empty input),
    and ``count`` values outside ``[1, len(items)]`` are clamped.
    """
    count = max(min(count, len(items)), 1)
    size, remainder = divmod(len(items), count)
    chunks: List[List] = []
    start = 0
    for i in range(count):
        stop = start + size + (1 if i < remainder else 0)
        chunks.append(items[start:stop])
        start = stop
    return chunks
