"""The declarative work protocol the :class:`~repro.engine.Engine` executes.

A :class:`Job` says *what* to compute — the engine owns *how*: pool setup,
chunking, context shipping, progress and result assembly.  Implementations
must be picklable (they are shipped to every worker once, through the pool
initializer), which in practice means fields of names and scalars rather
than resolved models or backends; heavyweight state belongs in
:meth:`Job.setup`, which runs after unpickling inside each worker.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = ["Job"]


class Job:
    """One declarative unit of engine work.

    Lifecycle, in order:

    1. ``enumerate()`` — parent process, once: the full, deterministically
       ordered list of work items.  Item order *is* row order.
    2. ``prepare()`` — parent process, once: shared context every worker
       needs (e.g. a pre-measured cache snapshot).  Must be picklable.
    3. ``setup(context)`` — once per worker process (and once in-process for
       serial runs), after the job is unpickled: install worker-local state
       such as caches or memo dictionaries.
    4. ``evaluate(item)`` — once per work item: produce that item's row.
       Rows are opaque to the engine; dicts are conventional but anything
       picklable works.
    5. ``collect()`` — after each completed chunk, on the worker that ran
       it: cumulative worker-side statistics (e.g. cache hit rates) for the
       parent to aggregate.  The engine keeps only each worker's latest
       report, so returning the worker's running totals is correct even
       when one worker processes several chunks.  Return ``None`` (the
       default) to report nothing.

    Determinism contract: ``evaluate`` must be a pure function of the item
    plus state installed by ``setup`` — never of *which* worker runs it or
    of evaluation order.  Jobs honouring this produce identical rows for
    any worker count, which is what the repo's byte-identity tests pin.
    """

    def enumerate(self) -> Sequence[Any]:
        """The ordered work items.  Called once, in the parent."""
        raise NotImplementedError

    def prepare(self) -> Any:
        """Shared, picklable context computed once in the parent."""
        return None

    def setup(self, context: Any) -> None:
        """Install worker-local state.  Runs once per worker."""

    def evaluate(self, item: Any) -> Any:
        """Produce the row for one work item."""
        raise NotImplementedError

    def collect(self) -> Optional[Any]:
        """Worker-side statistics for one completed chunk, or ``None``."""
        return None
