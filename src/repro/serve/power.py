"""Per-replica power models for the serving cluster.

A :class:`PowerModel` assigns a constant electrical draw (watts) to each
state a replica passes through in the PR-8 lifecycle: ``provisioning_w``
while a replica warms up, ``idle_w`` while it is active (or draining) with
no batch on it, and ``busy_w`` while a batch is in flight.  A degraded
replica draws ``busy_w × degraded_factor`` while busy (slower silicon
rarely gets cheaper).  Dead replicas draw nothing.

Because replicas only change state at event instants, cluster power is
piecewise constant between events and the energy integral
``energy_j = ∫ power dt`` is an exact segment sum — the same house pattern
as ``replica_seconds``, and pinned bit-identical by the naive integrator in
:mod:`repro.serve.reference`.

Models come from three places:

* explicitly, ``PowerModel(idle_w=.., busy_w=.., provisioning_w=..)``;
* the textual form ``busy=2.0`` / ``idle=0.5,busy=2.0,provision=1.0,degraded=1.2``
  (``repro serve --power``), unset knobs defaulting off ``busy_w``;
* derived from measurements: :meth:`PowerModel.from_energy` divides the
  premeasured per-request energy (``Backend.measure`` joules) by the
  premeasured service seconds, so the busy draw matches the energy
  accounting the report already does per request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PowerModel", "parse_power_model"]

#: Fractions of the busy draw used when idle/provisioning watts are not
#: given explicitly (textual form and measurement-derived models).
IDLE_FRACTION = 0.3
PROVISIONING_FRACTION = 0.5


@dataclass(frozen=True)
class PowerModel:
    """Constant per-state replica power draw, in watts."""

    idle_w: float
    busy_w: float
    provisioning_w: float
    degraded_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in ("idle_w", "busy_w", "provisioning_w"):
            value = getattr(self, name)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 0, got {value}")
        if self.degraded_factor <= 0 or not math.isfinite(self.degraded_factor):
            raise ValueError(
                f"degraded_factor must be finite and > 0, got {self.degraded_factor}"
            )

    @classmethod
    def from_busy(cls, busy_w: float, degraded_factor: float = 1.0) -> "PowerModel":
        """Idle/provisioning watts as fixed fractions of the busy draw."""
        return cls(
            idle_w=IDLE_FRACTION * busy_w,
            busy_w=busy_w,
            provisioning_w=PROVISIONING_FRACTION * busy_w,
            degraded_factor=degraded_factor,
        )

    @classmethod
    def from_energy(cls, energy_j: float, busy_s: float) -> "PowerModel":
        """Derive the busy draw from measured energy over measured service time.

        ``energy_j / busy_s`` is the average power the backend's energy
        accounting already implies per in-flight request; idle and
        provisioning draws fall out as the standard fractions.
        """
        if busy_s <= 0:
            raise ValueError("from_energy needs busy_s > 0")
        if energy_j < 0:
            raise ValueError("from_energy needs energy_j >= 0")
        return cls.from_busy(energy_j / busy_s)

    @classmethod
    def parse(cls, text: str) -> "PowerModel":
        """Parse ``k=v,...`` with keys idle/busy/provision/degraded (busy required)."""
        text = text.strip()
        if not text:
            raise ValueError("empty power model")
        params = {}
        known = {"idle", "busy", "provision", "degraded"}
        for pair in text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or key not in known:
                raise ValueError(
                    f"cannot parse power parameter {pair!r}; "
                    f"expected one of {sorted(known)} as k=v"
                )
            params[key] = float(value)
        if "busy" not in params:
            raise ValueError("power model needs busy=... watts")
        busy = params["busy"]
        return cls(
            idle_w=params.get("idle", IDLE_FRACTION * busy),
            busy_w=busy,
            provisioning_w=params.get("provision", PROVISIONING_FRACTION * busy),
            degraded_factor=params.get("degraded", 1.0),
        )

    def busy_watts(self, factor: float) -> float:
        """Draw of a busy replica with slowdown ``factor`` (1.0 = healthy)."""
        if factor != 1.0:
            return self.busy_w * self.degraded_factor
        return self.busy_w

    def describe(self) -> str:
        degraded = (
            f", degraded=x{self.degraded_factor:g}"
            if self.degraded_factor != 1.0
            else ""
        )
        return (
            f"PowerModel(idle={self.idle_w:g}W, busy={self.busy_w:g}W, "
            f"provision={self.provisioning_w:g}W{degraded})"
        )


def parse_power_model(text: str) -> PowerModel:
    """Module-level alias for :meth:`PowerModel.parse` (CLI entry point)."""
    return PowerModel.parse(text)
