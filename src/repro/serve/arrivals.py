"""Arrival processes and the seeded multi-tenant load generator.

The serving simulator consumes a time-ordered list of
:class:`ServingRequest` events.  ``LoadGenerator`` produces that list from
per-tenant :class:`Workload` specs and pluggable :class:`ArrivalProcess`
implementations:

* :class:`ConstantArrivals` — fixed inter-arrival time (the
  :class:`~repro.graph.GraphStream` model; interval 0 is a burst);
* :class:`PoissonArrivals` — exponential inter-arrival times;
* :class:`OnOffArrivals` — bursty MMPP-style traffic: exponentially
  distributed ON/OFF phases with a high in-burst rate and a (default zero)
  background rate;
* :class:`TraceArrivals` — replay of recorded timestamps, loadable from CSV.

Everything is seeded: a ``LoadGenerator`` derives one independent
``numpy`` generator per tenant from ``(seed, tenant index)``, so the same
seed always yields the bit-identical request sequence regardless of how
many tenants share the cluster.
"""

from __future__ import annotations

import csv
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .workload import Workload

__all__ = [
    "ServingRequest",
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "TraceArrivals",
    "LoadGenerator",
]


@dataclass(frozen=True)
class ServingRequest:
    """One request in flight: a tenant asking for one graph at one instant."""

    tenant: str
    tenant_index: int
    index: int                      # per-tenant sequence number
    arrival_s: float
    graph_index: int                # into the tenant's graph pool
    deadline_s: Optional[float]     # relative to arrival; None = best effort
    priority: int = 0

    @property
    def absolute_deadline_s(self) -> float:
        """Wall-clock deadline; +inf for best-effort requests."""
        if self.deadline_s is None:
            return math.inf
        return self.arrival_s + self.deadline_s


def _check_sizing(num_requests: Optional[int], duration_s: Optional[float]) -> None:
    if num_requests is None and duration_s is None:
        raise ValueError("pass num_requests and/or duration_s")
    if num_requests is not None and num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if duration_s is not None and duration_s < 0:
        raise ValueError("duration_s must be >= 0")


def _trim(times: np.ndarray, num_requests: Optional[int], duration_s: Optional[float]) -> np.ndarray:
    if duration_s is not None:
        times = times[times < duration_s]
    if num_requests is not None:
        times = times[:num_requests]
    return np.asarray(times, dtype=np.float64)


class ArrivalProcess(ABC):
    """Generates sorted, non-negative arrival timestamps.

    Deterministic given the ``rng``: the same generator state yields the
    same timestamps.  Stochastic processes require an ``rng``; deterministic
    ones (constant, trace) ignore it.
    """

    name: str = "abstract"

    @abstractmethod
    def times(
        self,
        num_requests: Optional[int] = None,
        duration_s: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """The first ``num_requests`` arrivals and/or those within ``duration_s``."""


@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Fixed-rate arrivals: request ``i`` at ``i * interval_s``.

    ``interval_s == 0`` is a burst (everything at t=0), matching
    :meth:`GraphStream.arrival_times` exactly — bit-for-bit, which the
    single-replica serving equivalence tests rely on.
    """

    interval_s: float

    name = "constant"

    def __post_init__(self) -> None:
        if self.interval_s < 0:
            raise ValueError("interval_s must be >= 0")

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        _check_sizing(num_requests, duration_s)
        if num_requests is None:
            if self.interval_s == 0:
                raise ValueError(
                    "a zero-interval burst is unbounded; pass num_requests"
                )
            num_requests = int(math.ceil(duration_s / self.interval_s)) + 1
        times = np.arange(num_requests) * float(self.interval_s)
        return _trim(times, num_requests, duration_s)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson process: independent exponential inter-arrival times."""

    rate_rps: float

    name = "poisson"

    def __post_init__(self) -> None:
        if not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive")

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("PoissonArrivals needs an rng (it is stochastic)")
        mean_gap = 1.0 / self.rate_rps
        if num_requests is not None:
            times = np.cumsum(rng.exponential(mean_gap, size=num_requests))
        else:
            # Sample in chunks until the horizon is crossed.
            chunk = max(16, int(1.5 * self.rate_rps * duration_s) + 1)
            gaps = rng.exponential(mean_gap, size=chunk)
            times = np.cumsum(gaps)
            while times.size and times[-1] < duration_s:
                more = np.cumsum(rng.exponential(mean_gap, size=chunk)) + times[-1]
                times = np.concatenate([times, more])
        return _trim(times, num_requests, duration_s)


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty on-off (two-state MMPP) traffic.

    The source alternates between exponentially distributed ON phases (mean
    ``mean_on_s``, Poisson arrivals at ``on_rate_rps``) and OFF phases (mean
    ``mean_off_s``, Poisson arrivals at ``off_rate_rps``, default silent).
    The long-run average rate is
    ``(on_rate * mean_on + off_rate * mean_off) / (mean_on + mean_off)``.
    """

    on_rate_rps: float
    mean_on_s: float
    mean_off_s: float
    off_rate_rps: float = 0.0

    name = "bursty"

    def __post_init__(self) -> None:
        if not self.on_rate_rps > 0:
            raise ValueError("on_rate_rps must be positive")
        if self.off_rate_rps < 0:
            raise ValueError("off_rate_rps must be >= 0")
        if not self.mean_on_s > 0 or not self.mean_off_s > 0:
            raise ValueError("mean_on_s and mean_off_s must be positive")

    @property
    def mean_rate_rps(self) -> float:
        total = self.mean_on_s + self.mean_off_s
        return (self.on_rate_rps * self.mean_on_s + self.off_rate_rps * self.mean_off_s) / total

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("OnOffArrivals needs an rng (it is stochastic)")
        horizon = math.inf if duration_s is None else duration_s
        target = math.inf if num_requests is None else num_requests
        times: List[float] = []
        phase_start, on = 0.0, True
        while phase_start < horizon and len(times) < target:
            length = rng.exponential(self.mean_on_s if on else self.mean_off_s)
            rate = self.on_rate_rps if on else self.off_rate_rps
            if rate > 0:
                t = phase_start + rng.exponential(1.0 / rate)
                while t < phase_start + length and t < horizon and len(times) < target:
                    times.append(t)
                    t += rng.exponential(1.0 / rate)
            phase_start += length
            on = not on
        return _trim(np.array(times, dtype=np.float64), num_requests, duration_s)


def _read_trace_csv(
    path: str, time_column: str = "arrival_s", tenant_column: str = "tenant"
) -> Tuple[List[float], Optional[List[str]]]:
    """Timestamps (and tenant labels, when the column exists) of a trace CSV."""
    times: List[float] = []
    tenants: Optional[List[str]] = None
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or time_column not in reader.fieldnames:
            raise ValueError(f"trace CSV {path!r} has no {time_column!r} column")
        if tenant_column in reader.fieldnames:
            tenants = []
        for row in reader:
            times.append(float(row[time_column]))
            if tenants is not None:
                tenants.append(row[tenant_column])
    return times, tenants


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of recorded arrival timestamps (seconds, sorted)."""

    timestamps: Sequence[float]

    name = "trace"

    def __post_init__(self) -> None:
        times = np.asarray(list(self.timestamps), dtype=np.float64)
        if times.size and (np.any(times < 0) or np.any(np.diff(times) < 0)):
            raise ValueError("trace timestamps must be sorted and non-negative")
        object.__setattr__(self, "timestamps", tuple(float(t) for t in times))

    @staticmethod
    def from_csv(
        path: str,
        time_column: str = "arrival_s",
        tenant: Optional[str] = None,
        tenant_column: str = "tenant",
    ) -> "TraceArrivals":
        """Load a trace from a CSV file with an ``arrival_s`` column.

        When ``tenant`` is given and the file has a ``tenant`` column, only
        that tenant's rows are replayed — one trace file can drive a whole
        multi-tenant scenario.
        """
        times, tenants = _read_trace_csv(path, time_column, tenant_column)
        if tenant is not None and tenants is not None:
            times = [t for t, name in zip(times, tenants) if name == tenant]
        return TraceArrivals(timestamps=sorted(times))

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        # A recorded trace is already finite: with no sizing at all, replay
        # the whole thing (stochastic processes require a bound instead).
        if num_requests is not None or duration_s is not None:
            _check_sizing(num_requests, duration_s)
        return _trim(np.array(self.timestamps, dtype=np.float64), num_requests, duration_s)


class LoadGenerator:
    """Seeded generator of the merged multi-tenant request sequence.

    Parameters
    ----------
    workloads:
        The tenants.  Tenant names must be unique.
    arrivals:
        Either one :class:`ArrivalProcess` shared by every tenant or a
        mapping ``tenant name -> process``.
    seed:
        Master seed.  Tenant ``i`` draws from
        ``numpy.random.default_rng([seed, i])``, so adding a tenant never
        perturbs the arrival times of the others.
    """

    def __init__(
        self,
        workloads: Sequence[Workload],
        arrivals: Union[ArrivalProcess, Mapping[str, ArrivalProcess]],
        seed: int = 0,
    ) -> None:
        self.workloads = list(workloads)
        if not self.workloads:
            raise ValueError("LoadGenerator needs at least one workload")
        names = [w.tenant for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique; got {names}")
        if isinstance(arrivals, ArrivalProcess):
            self._arrivals: Dict[str, ArrivalProcess] = {n: arrivals for n in names}
        else:
            missing = [n for n in names if n not in arrivals]
            if missing:
                raise ValueError(f"no arrival process for tenants {missing}")
            self._arrivals = {n: arrivals[n] for n in names}
        self.seed = int(seed)

    def arrival_process(self, tenant: str) -> ArrivalProcess:
        return self._arrivals[tenant]

    def rng_for(self, tenant_index: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tenant_index])

    def generate(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> List[ServingRequest]:
        """The merged request sequence, sorted by arrival time.

        ``num_requests`` is per tenant (each tenant submits at most that
        many); ``duration_s`` bounds the arrival horizon.  With neither,
        finite processes (trace replay) emit everything they recorded and
        stochastic ones raise.  Ties are broken by tenant order then
        per-tenant sequence, so generation is fully deterministic.
        """
        requests: List[ServingRequest] = []
        for tenant_index, workload in enumerate(self.workloads):
            process = self._arrivals[workload.tenant]
            times = process.times(
                num_requests=num_requests,
                duration_s=duration_s,
                rng=self.rng_for(tenant_index),
            )
            pool = workload.num_pool_graphs
            for i, arrival in enumerate(times):
                requests.append(
                    ServingRequest(
                        tenant=workload.tenant,
                        tenant_index=tenant_index,
                        index=i,
                        arrival_s=float(arrival),
                        graph_index=i % pool,
                        deadline_s=workload.deadline_s,
                        priority=workload.priority,
                    )
                )
        requests.sort(key=lambda r: (r.arrival_s, r.tenant_index, r.index))
        return requests

    # -- conveniences: split a cluster-wide rate by tenant share --------------
    @staticmethod
    def _share_rates(workloads: Sequence[Workload], total_rate_rps: float) -> Dict[str, float]:
        if not total_rate_rps > 0:
            raise ValueError("total_rate_rps must be positive")
        total_share = sum(w.share for w in workloads)
        return {w.tenant: total_rate_rps * w.share / total_share for w in workloads}

    @classmethod
    def poisson(
        cls, workloads: Sequence[Workload], total_rate_rps: float, seed: int = 0
    ) -> "LoadGenerator":
        """Poisson tenants whose rates split ``total_rate_rps`` by share."""
        rates = cls._share_rates(workloads, total_rate_rps)
        return cls(
            workloads,
            {name: PoissonArrivals(rate) for name, rate in rates.items()},
            seed=seed,
        )

    @classmethod
    def bursty(
        cls,
        workloads: Sequence[Workload],
        total_rate_rps: float,
        seed: int = 0,
        duty_cycle: float = 0.25,
        mean_on_s: Optional[float] = None,
    ) -> "LoadGenerator":
        """On-off tenants averaging ``total_rate_rps`` split by share.

        Each tenant is ON a ``duty_cycle`` fraction of the time; during a
        burst it fires at ``share_rate / duty_cycle`` so the long-run mean
        matches the share.  ``mean_on_s`` defaults to the time a burst takes
        to deliver ~8 requests.
        """
        if not 0 < duty_cycle < 1:
            raise ValueError("duty_cycle must be in (0, 1)")
        rates = cls._share_rates(workloads, total_rate_rps)
        processes = {}
        for name, rate in rates.items():
            on_rate = rate / duty_cycle
            on_s = mean_on_s if mean_on_s is not None else 8.0 / on_rate
            off_s = on_s * (1.0 - duty_cycle) / duty_cycle
            processes[name] = OnOffArrivals(
                on_rate_rps=on_rate, mean_on_s=on_s, mean_off_s=off_s
            )
        return cls(workloads, processes, seed=seed)

    @classmethod
    def constant(
        cls, workloads: Sequence[Workload], total_rate_rps: float, seed: int = 0
    ) -> "LoadGenerator":
        """Deterministic fixed-interval tenants splitting ``total_rate_rps``."""
        rates = cls._share_rates(workloads, total_rate_rps)
        return cls(
            workloads,
            {name: ConstantArrivals(1.0 / rate) for name, rate in rates.items()},
            seed=seed,
        )

    @classmethod
    def trace(
        cls, workloads: Sequence[Workload], path: str, seed: int = 0
    ) -> "LoadGenerator":
        """Replay a CSV trace across the tenants.

        A ``tenant`` column routes each row to the named tenant.  Without
        one, rows are dealt round-robin across the workloads in time order —
        never replayed once per tenant, which would multiply the recorded
        load by the tenant count.
        """
        times, tenants = _read_trace_csv(path)
        per_tenant: Dict[str, List[float]] = {w.tenant: [] for w in workloads}
        if tenants is not None:
            for t, name in zip(times, tenants):
                if name in per_tenant:
                    per_tenant[name].append(t)
            if times and not any(per_tenant.values()):
                raise ValueError(
                    f"no trace row matches any workload tenant: trace labels "
                    f"{sorted(set(tenants))} vs workloads {sorted(per_tenant)}"
                )
        else:
            for i, t in enumerate(sorted(times)):
                per_tenant[workloads[i % len(workloads)].tenant].append(t)
        processes = {
            name: TraceArrivals(timestamps=sorted(stamps))
            for name, stamps in per_tenant.items()
        }
        return cls(workloads, processes, seed=seed)
