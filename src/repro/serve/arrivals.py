"""Arrival processes and the seeded multi-tenant load generator.

The serving simulator consumes a time-ordered list of
:class:`ServingRequest` events.  ``LoadGenerator`` produces that list from
per-tenant :class:`Workload` specs and pluggable :class:`ArrivalProcess`
implementations:

* :class:`ConstantArrivals` — fixed inter-arrival time (the
  :class:`~repro.graph.GraphStream` model; interval 0 is a burst);
* :class:`PoissonArrivals` — exponential inter-arrival times;
* :class:`OnOffArrivals` — bursty MMPP-style traffic: exponentially
  distributed ON/OFF phases with a high in-burst rate and a (default zero)
  background rate;
* :class:`DiurnalArrivals` — rate-modulated (non-homogeneous) Poisson
  traffic following a day/night cosine: overnight lull at ``low`` times the
  mean, midday peak at ``high`` times, one cycle per ``period_s`` — the
  arrival-side twin of the carbon grid's diurnal intensity trace;
* :class:`TraceArrivals` — replay of recorded timestamps, loadable from CSV.

Everything is seeded: a ``LoadGenerator`` derives one independent
``numpy`` generator per tenant from ``(seed, tenant index)``, so the same
seed always yields the bit-identical request sequence regardless of how
many tenants share the cluster.

Two generation modes share that seeding:

* **eager** (:meth:`LoadGenerator.generate`) materialises the full merged
  list — the historical path, kept as the streaming mode's order oracle;
* **lazy** (:meth:`LoadGenerator.iter_requests` /
  :meth:`LoadGenerator.iter_request_blocks`) streams the same sequence
  without materialising it: every arrival process grows an ``iter_times``
  that yields timestamp chunks **bit-identical** to ``times()`` (same rng
  consumption, same cumulative-sum float operations — pinned by the serving
  property tests), and the per-tenant streams are heap-merged on the same
  ``(arrival, tenant index, index)`` key the eager sort uses.  Memory is
  O(tenants x chunk), not O(requests).
"""

from __future__ import annotations

import csv
import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .workload import Workload

#: Timestamp-chunk size of the lazy per-tenant streams.  Any value yields
#: bit-identical sequences (chunked ``Generator`` draws and carried cumsums
#: reproduce the one-shot floats exactly); this only tunes memory/speed.
STREAM_CHUNK = 8192

__all__ = [
    "ServingRequest",
    "RequestBlock",
    "ArrivalProcess",
    "ConstantArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "TraceArrivals",
    "LoadGenerator",
    "STREAM_CHUNK",
]


@dataclass(frozen=True)
class ServingRequest:
    """One request in flight: a tenant asking for one graph at one instant."""

    tenant: str
    tenant_index: int
    index: int                      # per-tenant sequence number
    arrival_s: float
    graph_index: int                # into the tenant's graph pool
    deadline_s: Optional[float]     # relative to arrival; None = best effort
    priority: int = 0

    @property
    def absolute_deadline_s(self) -> float:
        """Wall-clock deadline; +inf for best-effort requests."""
        if self.deadline_s is None:
            return math.inf
        return self.arrival_s + self.deadline_s


@dataclass(frozen=True)
class RequestBlock:
    """A struct-of-arrays slice of the merged request stream.

    Yielded by :meth:`LoadGenerator.iter_request_blocks` for the vectorised
    serving fast path: entries are in exact ``generate()`` order within the
    block, and every entry of block ``k`` sorts before every entry of block
    ``k + 1``.
    """

    arrival_s: np.ndarray    # float64, sorted
    tenant_index: np.ndarray  # int64, into LoadGenerator.workloads
    index: np.ndarray        # int64, per-tenant sequence numbers
    graph_index: np.ndarray  # int64, into each tenant's graph pool

    def __len__(self) -> int:
        return int(self.arrival_s.size)

    def requests(self, workloads: Sequence[Workload]) -> List[ServingRequest]:
        """Materialise the block as :class:`ServingRequest` objects."""
        out: List[ServingRequest] = []
        for arrival, ti, idx, gi in zip(
            self.arrival_s.tolist(),
            self.tenant_index.tolist(),
            self.index.tolist(),
            self.graph_index.tolist(),
        ):
            w = workloads[ti]
            out.append(
                ServingRequest(
                    tenant=w.tenant,
                    tenant_index=ti,
                    index=idx,
                    arrival_s=arrival,
                    graph_index=gi,
                    deadline_s=w.deadline_s,
                    priority=w.priority,
                )
            )
        return out


def _check_sizing(num_requests: Optional[int], duration_s: Optional[float]) -> None:
    if num_requests is None and duration_s is None:
        raise ValueError("pass num_requests and/or duration_s")
    if num_requests is not None and num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if duration_s is not None and duration_s < 0:
        raise ValueError("duration_s must be >= 0")


def _trim(times: np.ndarray, num_requests: Optional[int], duration_s: Optional[float]) -> np.ndarray:
    if duration_s is not None:
        times = times[times < duration_s]
    if num_requests is not None:
        times = times[:num_requests]
    return np.asarray(times, dtype=np.float64)


class ArrivalProcess(ABC):
    """Generates sorted, non-negative arrival timestamps.

    Deterministic given the ``rng``: the same generator state yields the
    same timestamps.  Stochastic processes require an ``rng``; deterministic
    ones (constant, trace) ignore it.
    """

    name: str = "abstract"

    @abstractmethod
    def times(
        self,
        num_requests: Optional[int] = None,
        duration_s: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """The first ``num_requests`` arrivals and/or those within ``duration_s``."""

    def iter_times(
        self,
        num_requests: Optional[int] = None,
        duration_s: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[np.ndarray]:
        """Yield the ``times()`` sequence as sorted float64 chunks.

        The concatenation of the yielded chunks must be bit-identical to
        ``times()`` under the same rng seeding.  This base implementation
        falls back to one eager chunk — always correct for custom processes
        but O(n) memory; the built-ins override it with truly streaming
        generators.
        """
        times = self.times(num_requests=num_requests, duration_s=duration_s, rng=rng)
        if times.size:
            yield times


@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Fixed-rate arrivals: request ``i`` at ``i * interval_s``.

    ``interval_s == 0`` is a burst (everything at t=0), matching
    :meth:`GraphStream.arrival_times` exactly — bit-for-bit, which the
    single-replica serving equivalence tests rely on.
    """

    interval_s: float

    name = "constant"

    def __post_init__(self) -> None:
        if self.interval_s < 0:
            raise ValueError("interval_s must be >= 0")

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        _check_sizing(num_requests, duration_s)
        if num_requests is None:
            if self.interval_s == 0:
                raise ValueError(
                    "a zero-interval burst is unbounded; pass num_requests"
                )
            num_requests = int(math.ceil(duration_s / self.interval_s)) + 1
        times = np.arange(num_requests) * float(self.interval_s)
        return _trim(times, num_requests, duration_s)

    def iter_times(self, num_requests=None, duration_s=None, rng=None):
        _check_sizing(num_requests, duration_s)
        total = num_requests
        if total is None:
            if self.interval_s == 0:
                raise ValueError(
                    "a zero-interval burst is unbounded; pass num_requests"
                )
            total = int(math.ceil(duration_s / self.interval_s)) + 1
        interval = float(self.interval_s)
        for lo in range(0, total, STREAM_CHUNK):
            hi = min(lo + STREAM_CHUNK, total)
            # Element i is always the int64 i times the float interval —
            # the same op ``times()`` applies, so chunking is invisible.
            chunk = np.arange(lo, hi) * interval
            if duration_s is not None:
                chunk = chunk[chunk < duration_s]
            if chunk.size:
                yield chunk
            if chunk.size < hi - lo:
                return  # horizon crossed; everything later is even larger


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson process: independent exponential inter-arrival times."""

    rate_rps: float

    name = "poisson"

    def __post_init__(self) -> None:
        if not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive")

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("PoissonArrivals needs an rng (it is stochastic)")
        mean_gap = 1.0 / self.rate_rps
        if num_requests is not None:
            times = np.cumsum(rng.exponential(mean_gap, size=num_requests))
        else:
            # Sample in chunks until the horizon is crossed.
            chunk = max(16, int(1.5 * self.rate_rps * duration_s) + 1)
            gaps = rng.exponential(mean_gap, size=chunk)
            times = np.cumsum(gaps)
            while times.size and times[-1] < duration_s:
                more = np.cumsum(rng.exponential(mean_gap, size=chunk)) + times[-1]
                times = np.concatenate([times, more])
        return _trim(times, num_requests, duration_s)

    def iter_times(self, num_requests=None, duration_s=None, rng=None):
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("PoissonArrivals needs an rng (it is stochastic)")
        mean_gap = 1.0 / self.rate_rps
        if num_requests is not None:
            # Bit-identical to the one-shot ``cumsum(exponential(size=n))``:
            # Generator draws split across calls reproduce the same variates,
            # and seeding each chunk's cumsum with the previous running total
            # replays the identical sequential float additions.
            carry: Optional[float] = None
            drawn = 0
            while drawn < num_requests:
                size = min(STREAM_CHUNK, num_requests - drawn)
                gaps = rng.exponential(mean_gap, size=size)
                if carry is None:
                    chunk = np.cumsum(gaps)
                else:
                    chunk = np.cumsum(np.concatenate(([carry], gaps)))[1:]
                carry = float(chunk[-1])
                drawn += size
                if duration_s is not None:
                    kept = chunk[chunk < duration_s]
                    if kept.size:
                        yield kept
                    if kept.size < chunk.size:
                        return
                else:
                    yield chunk
        else:
            # Mirror the ``times()`` chunk loop op-for-op (whole-chunk cumsum
            # *then* an offset add) so kept values are bit-identical.
            chunk_size = max(16, int(1.5 * self.rate_rps * duration_s) + 1)
            last: Optional[float] = None
            while True:
                gaps = rng.exponential(mean_gap, size=chunk_size)
                chunk = np.cumsum(gaps) if last is None else np.cumsum(gaps) + last
                last = float(chunk[-1])
                kept = chunk[chunk < duration_s]
                if kept.size:
                    yield kept
                if last >= duration_s:
                    return


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Rate-modulated Poisson arrivals on a day/night cosine.

    The instantaneous rate follows one cosine cycle per ``period_s``:
    trough at ``t = 0`` (the overnight lull), peak at half period.  ``low``
    and ``high`` are rate multipliers relative to the process's **mean** —
    intensities are normalised so the long-run average rate is exactly
    ``rate_rps`` whatever the swing, which keeps capacity planning
    comparable across arrival shapes.

    Sampling is exact thinning of a homogeneous Poisson process at the peak
    rate: candidates are drawn at the peak rate and kept with probability
    ``intensity(t) / peak``.  Candidate gaps and acceptance draws are
    consumed in fixed-size chunks by *both* paths — ``times()`` is the
    concatenation of ``iter_times()`` — so eager and lazy generation are
    bit-identical by construction.
    """

    rate_rps: float
    low: float = 0.25
    high: float = 1.75
    period_s: float = 0.02

    name = "diurnal"

    def __post_init__(self) -> None:
        if not self.rate_rps > 0:
            raise ValueError("rate_rps must be positive")
        if not self.period_s > 0:
            raise ValueError("period_s must be positive")
        if self.low < 0 or not self.high > 0 or self.low > self.high:
            raise ValueError("need 0 <= low <= high with high > 0")

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps

    @staticmethod
    def parse_options(spec: str) -> Dict[str, float]:
        """Options of a ``diurnal[:low=L,high=H,period=P]`` arrival string.

        Mirrors the ``CarbonIntensity.parse`` grammar: comma-separated
        ``key=value`` pairs after the colon, unknown keys rejected.  Returns
        keyword arguments for :class:`DiurnalArrivals` /
        :meth:`LoadGenerator.diurnal` (``period`` maps to ``period_s``).
        """
        if spec == "diurnal":
            return {}
        if not spec.startswith("diurnal:"):
            raise ValueError(f"not a diurnal arrival spec: {spec!r}")
        keys = {"low": "low", "high": "high", "period": "period_s"}
        options: Dict[str, float] = {}
        for part in spec[len("diurnal:") :].split(","):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"diurnal option {part!r} is not key=value")
            key = key.strip()
            if key not in keys:
                raise ValueError(
                    f"unknown diurnal option {key!r}; use low=, high=, period="
                )
            options[keys[key]] = float(value)
        return options

    def _intensity_multiplier(self, times: np.ndarray) -> np.ndarray:
        """The un-normalised rate multiplier ``low..high`` at each time."""
        phase = times * (2.0 * math.pi / self.period_s)
        return self.low + (self.high - self.low) * 0.5 * (1.0 - np.cos(phase))

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        chunks = list(
            self.iter_times(num_requests=num_requests, duration_s=duration_s, rng=rng)
        )
        if not chunks:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(chunks)

    def iter_times(self, num_requests=None, duration_s=None, rng=None):
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("DiurnalArrivals needs an rng (it is stochastic)")
        # Normalise so the time-averaged rate is rate_rps: the cosine's mean
        # multiplier is (low + high) / 2, so candidates run at
        # rate_rps * high / mean and survive with probability mult / high.
        mean_multiplier = 0.5 * (self.low + self.high)
        peak_gap = mean_multiplier / (self.rate_rps * self.high)
        horizon = math.inf if duration_s is None else float(duration_s)
        target = math.inf if num_requests is None else int(num_requests)
        emitted = 0
        carry: Optional[float] = None
        while emitted < target:
            gaps = rng.exponential(peak_gap, size=STREAM_CHUNK)
            if carry is None:
                candidates = np.cumsum(gaps)
            else:
                candidates = np.cumsum(np.concatenate(([carry], gaps)))[1:]
            carry = float(candidates[-1])
            # One uniform per candidate, drawn unconditionally, so rng
            # consumption is independent of the horizon/target cut below.
            accept = rng.random(size=STREAM_CHUNK)
            kept = candidates[
                accept * self.high < self._intensity_multiplier(candidates)
            ]
            if duration_s is not None:
                kept = kept[kept < duration_s]
            if num_requests is not None and emitted + kept.size > target:
                kept = kept[: int(target) - emitted]
            emitted += int(kept.size)
            if kept.size:
                yield kept
            if carry >= horizon:
                return  # horizon crossed; every later candidate is larger


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty on-off (two-state MMPP) traffic.

    The source alternates between exponentially distributed ON phases (mean
    ``mean_on_s``, Poisson arrivals at ``on_rate_rps``) and OFF phases (mean
    ``mean_off_s``, Poisson arrivals at ``off_rate_rps``, default silent).
    The long-run average rate is
    ``(on_rate * mean_on + off_rate * mean_off) / (mean_on + mean_off)``.
    """

    on_rate_rps: float
    mean_on_s: float
    mean_off_s: float
    off_rate_rps: float = 0.0

    name = "bursty"

    def __post_init__(self) -> None:
        if not self.on_rate_rps > 0:
            raise ValueError("on_rate_rps must be positive")
        if self.off_rate_rps < 0:
            raise ValueError("off_rate_rps must be >= 0")
        if not self.mean_on_s > 0 or not self.mean_off_s > 0:
            raise ValueError("mean_on_s and mean_off_s must be positive")

    @property
    def mean_rate_rps(self) -> float:
        total = self.mean_on_s + self.mean_off_s
        return (self.on_rate_rps * self.mean_on_s + self.off_rate_rps * self.mean_off_s) / total

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("OnOffArrivals needs an rng (it is stochastic)")
        horizon = math.inf if duration_s is None else duration_s
        target = math.inf if num_requests is None else num_requests
        times: List[float] = []
        phase_start, on = 0.0, True
        while phase_start < horizon and len(times) < target:
            length = rng.exponential(self.mean_on_s if on else self.mean_off_s)
            rate = self.on_rate_rps if on else self.off_rate_rps
            if rate > 0:
                t = phase_start + rng.exponential(1.0 / rate)
                while t < phase_start + length and t < horizon and len(times) < target:
                    times.append(t)
                    t += rng.exponential(1.0 / rate)
            phase_start += length
            on = not on
        return _trim(np.array(times, dtype=np.float64), num_requests, duration_s)

    def iter_times(self, num_requests=None, duration_s=None, rng=None):
        _check_sizing(num_requests, duration_s)
        if rng is None:
            raise ValueError("OnOffArrivals needs an rng (it is stochastic)")
        # The eager path is a scalar loop already; this mirrors it draw-for-
        # draw (phase lengths, then one gap per candidate arrival) while
        # flushing buffered timestamps every STREAM_CHUNK values.
        horizon = math.inf if duration_s is None else duration_s
        target = math.inf if num_requests is None else num_requests
        buf: List[float] = []
        emitted = 0
        phase_start, on = 0.0, True
        while phase_start < horizon and emitted + len(buf) < target:
            length = rng.exponential(self.mean_on_s if on else self.mean_off_s)
            rate = self.on_rate_rps if on else self.off_rate_rps
            if rate > 0:
                t = phase_start + rng.exponential(1.0 / rate)
                while t < phase_start + length and t < horizon and emitted + len(buf) < target:
                    buf.append(t)
                    if len(buf) >= STREAM_CHUNK:
                        emitted += len(buf)
                        yield np.array(buf, dtype=np.float64)
                        buf = []
                    t += rng.exponential(1.0 / rate)
            phase_start += length
            on = not on
        if buf:
            yield np.array(buf, dtype=np.float64)


def _read_trace_csv(
    path: str, time_column: str = "arrival_s", tenant_column: str = "tenant"
) -> Tuple[List[float], Optional[List[str]]]:
    """Timestamps (and tenant labels, when the column exists) of a trace CSV."""
    times: List[float] = []
    tenants: Optional[List[str]] = None
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or time_column not in reader.fieldnames:
            raise ValueError(f"trace CSV {path!r} has no {time_column!r} column")
        if tenant_column in reader.fieldnames:
            tenants = []
        for row in reader:
            times.append(float(row[time_column]))
            if tenants is not None:
                tenants.append(row[tenant_column])
    return times, tenants


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of recorded arrival timestamps (seconds, sorted)."""

    timestamps: Sequence[float]

    name = "trace"

    def __post_init__(self) -> None:
        times = np.asarray(list(self.timestamps), dtype=np.float64)
        if times.size and (np.any(times < 0) or np.any(np.diff(times) < 0)):
            raise ValueError("trace timestamps must be sorted and non-negative")
        object.__setattr__(self, "timestamps", tuple(float(t) for t in times))

    @staticmethod
    def from_csv(
        path: str,
        time_column: str = "arrival_s",
        tenant: Optional[str] = None,
        tenant_column: str = "tenant",
    ) -> "TraceArrivals":
        """Load a trace from a CSV file with an ``arrival_s`` column.

        When ``tenant`` is given and the file has a ``tenant`` column, only
        that tenant's rows are replayed — one trace file can drive a whole
        multi-tenant scenario.
        """
        times, tenants = _read_trace_csv(path, time_column, tenant_column)
        if tenant is not None and tenants is not None:
            times = [t for t, name in zip(times, tenants) if name == tenant]
        return TraceArrivals(timestamps=sorted(times))

    def times(self, num_requests=None, duration_s=None, rng=None) -> np.ndarray:
        # A recorded trace is already finite: with no sizing at all, replay
        # the whole thing (stochastic processes require a bound instead).
        if num_requests is not None or duration_s is not None:
            _check_sizing(num_requests, duration_s)
        return _trim(np.array(self.timestamps, dtype=np.float64), num_requests, duration_s)

    def iter_times(self, num_requests=None, duration_s=None, rng=None):
        if num_requests is not None or duration_s is not None:
            _check_sizing(num_requests, duration_s)
        emitted = 0
        for lo in range(0, len(self.timestamps), STREAM_CHUNK):
            chunk = np.array(self.timestamps[lo : lo + STREAM_CHUNK], dtype=np.float64)
            full = chunk.size
            if duration_s is not None:
                chunk = chunk[chunk < duration_s]
            done = chunk.size < full
            if num_requests is not None and emitted + chunk.size >= num_requests:
                chunk = chunk[: num_requests - emitted]
                done = True
            emitted += chunk.size
            if chunk.size:
                yield chunk
            if done:
                return


class LoadGenerator:
    """Seeded generator of the merged multi-tenant request sequence.

    Parameters
    ----------
    workloads:
        The tenants.  Tenant names must be unique.
    arrivals:
        Either one :class:`ArrivalProcess` shared by every tenant or a
        mapping ``tenant name -> process``.
    seed:
        Master seed.  Tenant ``i`` draws from
        ``numpy.random.default_rng([seed, i])``, so adding a tenant never
        perturbs the arrival times of the others.
    """

    def __init__(
        self,
        workloads: Sequence[Workload],
        arrivals: Union[ArrivalProcess, Mapping[str, ArrivalProcess]],
        seed: int = 0,
    ) -> None:
        self.workloads = list(workloads)
        if not self.workloads:
            raise ValueError("LoadGenerator needs at least one workload")
        names = [w.tenant for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique; got {names}")
        if isinstance(arrivals, ArrivalProcess):
            self._arrivals: Dict[str, ArrivalProcess] = {n: arrivals for n in names}
        else:
            missing = [n for n in names if n not in arrivals]
            if missing:
                raise ValueError(f"no arrival process for tenants {missing}")
            self._arrivals = {n: arrivals[n] for n in names}
        self.seed = int(seed)

    def arrival_process(self, tenant: str) -> ArrivalProcess:
        return self._arrivals[tenant]

    def rng_for(self, tenant_index: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tenant_index])

    def generate(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> List[ServingRequest]:
        """The merged request sequence, sorted by arrival time.

        ``num_requests`` is per tenant (each tenant submits at most that
        many); ``duration_s`` bounds the arrival horizon.  With neither,
        finite processes (trace replay) emit everything they recorded and
        stochastic ones raise.  Ties are broken by tenant order then
        per-tenant sequence, so generation is fully deterministic.
        """
        requests: List[ServingRequest] = []
        for tenant_index, workload in enumerate(self.workloads):
            process = self._arrivals[workload.tenant]
            times = process.times(
                num_requests=num_requests,
                duration_s=duration_s,
                rng=self.rng_for(tenant_index),
            )
            pool = workload.num_pool_graphs
            for i, arrival in enumerate(times):
                requests.append(
                    ServingRequest(
                        tenant=workload.tenant,
                        tenant_index=tenant_index,
                        index=i,
                        arrival_s=float(arrival),
                        graph_index=i % pool,
                        deadline_s=workload.deadline_s,
                        priority=workload.priority,
                    )
                )
        requests.sort(key=lambda r: (r.arrival_s, r.tenant_index, r.index))
        return requests

    # -- lazy streaming: same sequence, O(tenants x chunk) memory -------------
    def _tenant_stream(
        self,
        tenant_index: int,
        workload: Workload,
        duration_s: Optional[float],
        num_requests: Optional[int],
    ) -> Iterator[ServingRequest]:
        process = self._arrivals[workload.tenant]
        pool = workload.num_pool_graphs
        i = 0
        for chunk in process.iter_times(
            num_requests=num_requests,
            duration_s=duration_s,
            rng=self.rng_for(tenant_index),
        ):
            for arrival in chunk.tolist():
                yield ServingRequest(
                    tenant=workload.tenant,
                    tenant_index=tenant_index,
                    index=i,
                    arrival_s=arrival,
                    graph_index=i % pool,
                    deadline_s=workload.deadline_s,
                    priority=workload.priority,
                )
                i += 1

    def iter_requests(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> Iterator[ServingRequest]:
        """Lazily yield exactly the :meth:`generate` sequence, in order.

        Per-tenant ``iter_times`` streams are heap-merged on the eager sort
        key ``(arrival_s, tenant_index, index)``; because the key is unique
        the merged order is bit-identical to ``generate()`` while holding
        only O(tenants x chunk) timestamps in memory.
        """
        streams = [
            self._tenant_stream(i, w, duration_s, num_requests)
            for i, w in enumerate(self.workloads)
        ]
        return heapq.merge(
            *streams, key=lambda r: (r.arrival_s, r.tenant_index, r.index)
        )

    def iter_request_blocks(
        self,
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
    ) -> Iterator[RequestBlock]:
        """The merged stream as numpy :class:`RequestBlock` slices.

        Block boundaries respect the global order: the window boundary is the
        smallest buffered-last timestamp over the non-exhausted tenants, each
        tenant is refilled until its buffer passes the boundary, and every
        buffered entry at or below it is emitted after an
        ``(arrival, tenant, index)`` lexsort.  That makes each block complete
        (no later entry can sort into it) and the concatenation bit-identical
        to :meth:`generate`.
        """
        num_tenants = len(self.workloads)
        pools = np.array([w.num_pool_graphs for w in self.workloads], dtype=np.int64)
        iters = [
            self._arrivals[w.tenant].iter_times(
                num_requests=num_requests,
                duration_s=duration_s,
                rng=self.rng_for(i),
            )
            for i, w in enumerate(self.workloads)
        ]
        bufs: List[np.ndarray] = [np.empty(0, dtype=np.float64) for _ in range(num_tenants)]
        first = [0] * num_tenants  # per-tenant index of bufs[i][0]
        exhausted = [False] * num_tenants

        def refill(i: int) -> None:
            try:
                chunk = next(iters[i])
            except StopIteration:
                exhausted[i] = True
                return
            bufs[i] = chunk if not bufs[i].size else np.concatenate([bufs[i], chunk])

        while True:
            for i in range(num_tenants):
                while not exhausted[i] and not bufs[i].size:
                    refill(i)
            active = [i for i in range(num_tenants) if not exhausted[i]]
            if not any(b.size for b in bufs):
                return
            if active:
                boundary = min(float(bufs[i][-1]) for i in active)
                for i in active:
                    while not exhausted[i] and bufs[i][-1] <= boundary:
                        refill(i)
            else:
                boundary = math.inf
            parts_arrival: List[np.ndarray] = []
            parts_tenant: List[np.ndarray] = []
            parts_index: List[np.ndarray] = []
            for i in range(num_tenants):
                b = bufs[i]
                if not b.size:
                    continue
                cut = (
                    b.size
                    if boundary is math.inf
                    else int(np.searchsorted(b, boundary, side="right"))
                )
                if not cut:
                    continue
                parts_arrival.append(b[:cut])
                parts_tenant.append(np.full(cut, i, dtype=np.int64))
                parts_index.append(np.arange(first[i], first[i] + cut, dtype=np.int64))
                bufs[i] = b[cut:]
                first[i] += cut
            arrival = np.concatenate(parts_arrival)
            tenant = np.concatenate(parts_tenant)
            index = np.concatenate(parts_index)
            order = np.lexsort((index, tenant, arrival))
            arrival, tenant, index = arrival[order], tenant[order], index[order]
            yield RequestBlock(
                arrival_s=arrival,
                tenant_index=tenant,
                index=index,
                graph_index=index % pools[tenant],
            )

    # -- conveniences: split a cluster-wide rate by tenant share --------------
    @staticmethod
    def _share_rates(workloads: Sequence[Workload], total_rate_rps: float) -> Dict[str, float]:
        if not total_rate_rps > 0:
            raise ValueError("total_rate_rps must be positive")
        total_share = sum(w.share for w in workloads)
        return {w.tenant: total_rate_rps * w.share / total_share for w in workloads}

    @classmethod
    def poisson(
        cls, workloads: Sequence[Workload], total_rate_rps: float, seed: int = 0
    ) -> "LoadGenerator":
        """Poisson tenants whose rates split ``total_rate_rps`` by share."""
        rates = cls._share_rates(workloads, total_rate_rps)
        return cls(
            workloads,
            {name: PoissonArrivals(rate) for name, rate in rates.items()},
            seed=seed,
        )

    @classmethod
    def bursty(
        cls,
        workloads: Sequence[Workload],
        total_rate_rps: float,
        seed: int = 0,
        duty_cycle: float = 0.25,
        mean_on_s: Optional[float] = None,
    ) -> "LoadGenerator":
        """On-off tenants averaging ``total_rate_rps`` split by share.

        Each tenant is ON a ``duty_cycle`` fraction of the time; during a
        burst it fires at ``share_rate / duty_cycle`` so the long-run mean
        matches the share.  ``mean_on_s`` defaults to the time a burst takes
        to deliver ~8 requests.
        """
        if not 0 < duty_cycle < 1:
            raise ValueError("duty_cycle must be in (0, 1)")
        rates = cls._share_rates(workloads, total_rate_rps)
        processes = {}
        for name, rate in rates.items():
            on_rate = rate / duty_cycle
            on_s = mean_on_s if mean_on_s is not None else 8.0 / on_rate
            off_s = on_s * (1.0 - duty_cycle) / duty_cycle
            processes[name] = OnOffArrivals(
                on_rate_rps=on_rate, mean_on_s=on_s, mean_off_s=off_s
            )
        return cls(workloads, processes, seed=seed)

    @classmethod
    def diurnal(
        cls,
        workloads: Sequence[Workload],
        total_rate_rps: float,
        seed: int = 0,
        low: float = 0.25,
        high: float = 1.75,
        period_s: float = 0.02,
    ) -> "LoadGenerator":
        """Day/night rate-modulated Poisson tenants split by share.

        Every tenant follows the same ``low``/``high``/``period_s`` cosine
        (they share the clock — a real diurnal cycle is cluster-wide), with
        per-tenant mean rates splitting ``total_rate_rps`` by share; the
        cluster's long-run mean rate is exactly ``total_rate_rps``.
        """
        rates = cls._share_rates(workloads, total_rate_rps)
        return cls(
            workloads,
            {
                name: DiurnalArrivals(rate, low=low, high=high, period_s=period_s)
                for name, rate in rates.items()
            },
            seed=seed,
        )

    @classmethod
    def constant(
        cls, workloads: Sequence[Workload], total_rate_rps: float, seed: int = 0
    ) -> "LoadGenerator":
        """Deterministic fixed-interval tenants splitting ``total_rate_rps``."""
        rates = cls._share_rates(workloads, total_rate_rps)
        return cls(
            workloads,
            {name: ConstantArrivals(1.0 / rate) for name, rate in rates.items()},
            seed=seed,
        )

    @classmethod
    def trace(
        cls, workloads: Sequence[Workload], path: str, seed: int = 0
    ) -> "LoadGenerator":
        """Replay a CSV trace across the tenants.

        A ``tenant`` column routes each row to the named tenant.  Without
        one, rows are dealt round-robin across the workloads in time order —
        never replayed once per tenant, which would multiply the recorded
        load by the tenant count.
        """
        times, tenants = _read_trace_csv(path)
        per_tenant: Dict[str, List[float]] = {w.tenant: [] for w in workloads}
        if tenants is not None:
            for t, name in zip(times, tenants):
                if name in per_tenant:
                    per_tenant[name].append(t)
            if times and not any(per_tenant.values()):
                raise ValueError(
                    f"no trace row matches any workload tenant: trace labels "
                    f"{sorted(set(tenants))} vs workloads {sorted(per_tenant)}"
                )
        else:
            for i, t in enumerate(sorted(times)):
                per_tenant[workloads[i % len(workloads)].tenant].append(t)
        processes = {
            name: TraceArrivals(timestamps=sorted(stamps))
            for name, stamps in per_tenant.items()
        }
        return cls(workloads, processes, seed=seed)
