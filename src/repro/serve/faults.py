"""Deterministic fault schedules for the dynamic serving cluster.

A :class:`FaultSchedule` is a fixed list of :class:`FaultEvent` control
events — replica crashes, recoveries, slowdowns and restorations at known
simulation times — that :meth:`Cluster.serve` interleaves with arrivals and
completions on the event heap.  Schedules are plain data: building one
never touches a random generator unless you ask for the seeded
:meth:`FaultSchedule.crashes` form, and the same schedule replayed against
the same cluster and trace produces a bit-identical
:class:`~repro.serve.ServingReport` (the dynamic-path oracle in
:mod:`repro.serve.reference` pins this).

Semantics of each action against the replica lifecycle:

* ``fail``     — an ``active`` (or still-``provisioning``) replica dies.
  The batch already on the replica completes (records are emitted at
  dispatch time, and the streaming sketches cannot retract an observation),
  but queued requests pinned to it are re-routed through the dispatch
  policy and the replica takes no further work until recovered.  Failing a
  draining or dead replica is a no-op.
* ``recover``  — a ``dead`` replica rejoins the pool, healthy (any
  slowdown factor is cleared).  Recovering a live replica is a no-op.
* ``degrade``  — an ``active`` replica's service times are multiplied by
  ``factor`` (> 1 is slower) for subsequent dispatches.
* ``restore``  — clears a ``degrade`` (factor back to 1).

Two textual forms, both accepted by :meth:`FaultSchedule.parse` (and the
``repro serve --fault`` / ``repro plan --faults`` flags):

* an explicit event list, ``;``-separated::

      fail@0.010:r0;recover@0.020:r0;degrade@0.005:r1x2.5;restore@0.015:r1

  (``ACTION@TIME:rREPLICA`` with an optional ``xFACTOR`` for ``degrade``;
  ``crash`` is an alias for ``fail``);
* a seeded crash/recover process, ``random:mtbf=0.02,mttr=0.005,seed=1``
  (optionally ``horizon=...``), which draws per-replica exponential
  time-between-failure / time-to-repair sequences from
  ``np.random.default_rng([seed, replica])`` — deterministic for a given
  (seed, replica count, horizon).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultSchedule", "parse_fault_schedule", "FAULT_ACTIONS"]

#: Recognised fault actions (``crash`` parses as an alias for ``fail``).
FAULT_ACTIONS = ("fail", "recover", "degrade", "restore")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled control event against one replica."""

    time_s: float
    action: str
    replica: int
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_s}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.replica < 0:
            raise ValueError(f"fault replica must be >= 0, got {self.replica}")
        if self.factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {self.factor}")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, validated sequence of fault events."""

    events: Tuple[FaultEvent, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ValueError(f"expected FaultEvent, got {type(event).__name__}")

    def validate_replicas(self, num_replicas: int) -> None:
        """Reject events naming replicas the initial pool does not have.

        Only meaningful for explicit schedules swept against a known pool
        size; events against autoscaler-added replicas are impossible to
        name statically, so the dynamic loop itself treats an out-of-range
        replica as a no-op rather than an error.
        """
        for event in self.events:
            if event.replica >= num_replicas:
                raise ValueError(
                    f"fault event {event.action}@{event.time_s}:r{event.replica} "
                    f"names a replica outside the initial pool of {num_replicas}"
                )

    def describe(self) -> str:
        """Canonical textual form (round-trips through :meth:`parse`)."""
        parts = []
        for event in self.events:
            text = f"{event.action}@{event.time_s:g}:r{event.replica}"
            if event.action == "degrade":
                text += f"x{event.factor:g}"
            parts.append(text)
        return ";".join(parts)

    @classmethod
    def crashes(
        cls,
        num_replicas: int,
        horizon_s: float,
        mtbf_s: float,
        mttr_s: float,
        seed: int = 0,
    ) -> "FaultSchedule":
        """A seeded per-replica crash/recover process over ``horizon_s``.

        Each replica draws alternating exponential time-between-failure and
        time-to-repair intervals from its own ``default_rng([seed, r])``
        stream.  Crashes beyond the horizon are discarded; the matching
        recovery of an in-horizon crash is always kept (replicas never stay
        dead forever just because the horizon cut the schedule short).
        """
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0 for a random fault schedule")
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be > 0")
        events = []
        for replica in range(num_replicas):
            rng = np.random.default_rng([int(seed), replica])
            t = float(rng.exponential(mtbf_s))
            while t < horizon_s:
                events.append(FaultEvent(time_s=t, action="fail", replica=replica))
                t += float(rng.exponential(mttr_s))
                events.append(FaultEvent(time_s=t, action="recover", replica=replica))
                t += float(rng.exponential(mtbf_s))
        events.sort(key=lambda e: (e.time_s, e.replica))
        return cls(events=tuple(events))

    @classmethod
    def parse(
        cls,
        text: str,
        num_replicas: Optional[int] = None,
        horizon_s: Optional[float] = None,
    ) -> "FaultSchedule":
        """Parse the textual schedule forms (see the module docstring).

        ``num_replicas``/``horizon_s`` supply the context the ``random:``
        form needs (and, when ``num_replicas`` is given, explicit events are
        validated against the pool size).
        """
        text = text.strip()
        if not text:
            raise ValueError("empty fault schedule")
        if text.startswith("random:") or text == "random":
            params = _parse_kv(text.partition(":")[2], "fault schedule")
            known = {"mtbf", "mttr", "seed", "horizon"}
            unknown = set(params) - known
            if unknown:
                raise ValueError(
                    f"unknown random fault parameter(s) {sorted(unknown)}; "
                    f"expected {sorted(known)}"
                )
            if "mtbf" not in params or "mttr" not in params:
                raise ValueError("random fault schedule needs mtbf=... and mttr=...")
            horizon = params.get("horizon", horizon_s)
            if horizon is None:
                raise ValueError(
                    "random fault schedule needs horizon=... (or a serve duration)"
                )
            if num_replicas is None:
                raise ValueError("random fault schedule needs the replica count")
            return cls.crashes(
                num_replicas=num_replicas,
                horizon_s=float(horizon),
                mtbf_s=float(params["mtbf"]),
                mttr_s=float(params["mttr"]),
                seed=int(params.get("seed", 0)),
            )
        events = []
        for part in text.split(";"):
            part = part.strip()
            if not part:
                continue
            events.append(_parse_event(part))
        schedule = cls(events=tuple(events))
        if num_replicas is not None:
            schedule.validate_replicas(num_replicas)
        return schedule


def _parse_event(part: str) -> FaultEvent:
    """One ``ACTION@TIME:rREPLICA[xFACTOR]`` clause."""
    action, at, rest = part.partition("@")
    action = action.strip().lower()
    if action == "crash":
        action = "fail"
    if not at or not rest:
        raise ValueError(
            f"cannot parse fault event {part!r}; expected ACTION@TIME:rREPLICA"
        )
    time_text, colon, replica_text = rest.partition(":")
    if not colon:
        raise ValueError(
            f"cannot parse fault event {part!r}; expected ACTION@TIME:rREPLICA"
        )
    replica_text = replica_text.strip()
    factor = 1.0
    if "x" in replica_text:
        replica_text, _, factor_text = replica_text.partition("x")
        factor = float(factor_text)
    if not replica_text.startswith("r"):
        raise ValueError(
            f"cannot parse fault event {part!r}; replica must be written rN"
        )
    return FaultEvent(
        time_s=float(time_text),
        action=action,
        replica=int(replica_text[1:]),
        factor=factor,
    )


def _parse_kv(text: str, what: str) -> dict:
    """``k=v,k=v`` pairs as a str->float dict (shared mini-grammar)."""
    params = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, eq, value = pair.partition("=")
        if not eq:
            raise ValueError(f"cannot parse {what} parameter {pair!r}; expected k=v")
        params[key.strip()] = float(value)
    return params


def parse_fault_schedule(
    text: str,
    num_replicas: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> FaultSchedule:
    """Module-level alias for :meth:`FaultSchedule.parse` (CLI entry point)."""
    return FaultSchedule.parse(text, num_replicas=num_replicas, horizon_s=horizon_s)
