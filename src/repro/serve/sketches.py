"""Online accumulators backing the streaming (sketch-mode) serving report.

Exact-mode serving stores a per-request latency array and derives every
statistic from it afterwards; at datacenter scale that array *is* the memory
bound.  This module provides the O(1)-memory replacements:

* :class:`StreamingMoments` — count / sum (mean) / min / max, exactly.  The
  chunked update sums each chunk with ``np.sum`` so a single ``update_many``
  call reproduces numpy's reduction bit for bit (the property tests pin
  this); across chunks only summation order differs.
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac, 1985): one
  quantile estimated from five markers, no samples stored.  Below five
  observations the estimate is exact (the samples are the markers).
* :class:`QuantileSketch` — a bundle of :class:`P2Quantile` markers (p50 and
  p99 by default) sharing one update call.
* :class:`StreamingHistogram` — fixed, caller-chosen bucket edges with
  vectorised chunk updates, plus exact count/sum/min/max so means and maxima
  never degrade to bucket resolution.  :meth:`StreamingHistogram.log_spaced`
  builds HDR-style geometric buckets whose :meth:`~StreamingHistogram.quantile`
  estimates carry a distribution-independent relative-error bound.
* :class:`LatencySketch` — the per-tenant aggregation the serving simulator
  feeds: exact service/energy moments, end-to-end latency moments with
  log-histogram percentiles, and the float-tolerant deadline-miss counter
  that mirrors :meth:`~repro.graph.StreamStatistics.deadline_miss_count`
  exactly.

Accuracy contract (pinned by ``tests/test_serve_sketches.py``):

* the log-spaced histogram's p50/p99 are within ~3% relative error of
  ``np.percentile`` for *any* sample inside its [1 ns, 10 000 s] range —
  bucket width (2%) plus interpolation slack — which is why it backs the
  serving report: queueing produces bimodal latency mixtures (fast unqueued
  vs. slow queued requests) on which marker estimators fail badly;
* P² p50 is within ~2% on unimodal lognormal/Pareto samples of >= 2k
  observations and p99 within ~15% (lognormal) / ~25% (Pareto heavy tail),
  but is documented (and tested) as *unbounded* on strongly bimodal data —
  it remains exported as the constant-memory primitive for metrics without
  a natural bucket range.
  P² is order-dependent, so estimates are deterministic for a deterministic
  stream (everything in :mod:`repro.serve` is) but may differ within the
  band between event orderings;
* count, mean, min and max are exact in all sketches.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StreamingMoments",
    "P2Quantile",
    "QuantileSketch",
    "StreamingHistogram",
    "LatencySketch",
    "sketch_nbytes",
]


class StreamingMoments:
    """Exact streaming count / sum / min / max (and mean) of a sample."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def update(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def update_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if not values.size:
            return
        self.count += int(values.size)
        self.total += float(np.sum(values))
        low = float(np.min(values))
        high = float(np.max(values))
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class P2Quantile:
    """The P² single-quantile estimator: five markers, no stored samples.

    ``estimate()`` is exact until five observations arrive (the markers are
    the sorted sample); afterwards the middle markers track the ``q``-th
    quantile by piecewise-parabolic interpolation.  ``update_many`` is a
    per-sample loop by necessity (the algorithm is sequential), written
    against local bindings so the 10M-request scale gate stays affordable.
    """

    __slots__ = ("q", "heights", "positions", "desired", "increments", "count")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = float(q)
        self.heights: List[float] = []
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self.increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    # -- update ---------------------------------------------------------------
    def update(self, value: float) -> None:
        self.update_many((value,))

    def update_many(self, values: Sequence[float]) -> None:
        if isinstance(values, np.ndarray):
            values = values.tolist()
        heights = self.heights
        count = self.count
        # Bootstrap: the first five observations are stored verbatim.
        index = 0
        total = len(values)
        while count < 5 and index < total:
            heights.append(float(values[index]))
            index += 1
            count += 1
            if count == 5:
                heights.sort()
        self.count = count
        if index >= total:
            return
        positions = self.positions
        desired = self.desired
        increments = self.increments
        h0, h1, h2, h3, h4 = heights
        n0, n1, n2, n3, n4 = positions
        d1, d2, d3 = desired[1], desired[2], desired[3]
        i1, i2, i3 = increments[1], increments[2], increments[3]
        for raw in values[index:]:
            x = float(raw)
            # Locate the cell and clamp the extreme markers.
            if x < h0:
                h0 = x
                k = 0
            elif x < h1:
                k = 0
            elif x < h2:
                k = 1
            elif x < h3:
                k = 2
            elif x <= h4:
                k = 3
            else:
                h4 = x
                k = 3
            if k < 1:
                n1 += 1.0
            if k < 2:
                n2 += 1.0
            if k < 3:
                n3 += 1.0
            n4 += 1.0
            d1 += i1
            d2 += i2
            d3 += i3
            # Adjust the three middle markers toward their desired positions.
            delta = d1 - n1
            if (delta >= 1.0 and n2 - n1 > 1.0) or (delta <= -1.0 and n0 - n1 < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = _parabolic(step, n0, n1, n2, h0, h1, h2)
                if h0 < candidate < h2:
                    h1 = candidate
                else:
                    h1 = _linear(step, n0, n1, n2, h0, h1, h2)
                n1 += step
            delta = d2 - n2
            if (delta >= 1.0 and n3 - n2 > 1.0) or (delta <= -1.0 and n1 - n2 < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = _parabolic(step, n1, n2, n3, h1, h2, h3)
                if h1 < candidate < h3:
                    h2 = candidate
                else:
                    h2 = _linear(step, n1, n2, n3, h1, h2, h3)
                n2 += step
            delta = d3 - n3
            if (delta >= 1.0 and n4 - n3 > 1.0) or (delta <= -1.0 and n2 - n3 < -1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = _parabolic(step, n2, n3, n4, h2, h3, h4)
                if h2 < candidate < h4:
                    h3 = candidate
                else:
                    h3 = _linear(step, n2, n3, n4, h2, h3, h4)
                n3 += step
        heights[0], heights[1], heights[2], heights[3], heights[4] = h0, h1, h2, h3, h4
        positions[0], positions[1], positions[2], positions[3], positions[4] = (
            n0, n1, n2, n3, n4,
        )
        desired[1], desired[2], desired[3] = d1, d2, d3
        self.count = count + (total - index)

    # -- query ----------------------------------------------------------------
    def estimate(self) -> float:
        if not self.count:
            return 0.0
        if self.count < 5:
            # Exact small-sample quantile, matching np.percentile's default
            # linear interpolation.
            return float(np.percentile(np.array(self.heights[: self.count]), self.q * 100))
        return float(self.heights[2])


def _parabolic(step, n_prev, n, n_next, h_prev, h, h_next) -> float:
    return h + step / (n_next - n_prev) * (
        (n - n_prev + step) * (h_next - h) / (n_next - n)
        + (n_next - n - step) * (h - h_prev) / (n - n_prev)
    )


def _linear(step, n_prev, n, n_next, h_prev, h, h_next) -> float:
    if step > 0:
        return h + (h_next - h) / (n_next - n)
    return h - (h_prev - h) / (n_prev - n)


class QuantileSketch:
    """A bundle of :class:`P2Quantile` estimators sharing one update path."""

    __slots__ = ("quantiles",)

    def __init__(self, qs: Sequence[float] = (0.5, 0.99)) -> None:
        self.quantiles: Dict[float, P2Quantile] = {float(q): P2Quantile(q) for q in qs}

    def update_many(self, values: Sequence[float]) -> None:
        for sketch in self.quantiles.values():
            sketch.update_many(values)

    def estimate(self, q: float) -> float:
        return self.quantiles[float(q)].estimate()


class StreamingHistogram:
    """Fixed-bucket streaming histogram with exact count/sum/min/max.

    ``edges`` are the interior bucket boundaries: value ``x`` lands in bucket
    ``i`` such that ``edges[i-1] <= x < edges[i]`` (bucket 0 is everything
    below ``edges[0]``, the last bucket everything at or above ``edges[-1]``)
    — i.e. ``np.searchsorted(edges, x, side="right")``.  Memory is
    ``len(edges) + 1`` counters regardless of how many samples stream
    through.
    """

    __slots__ = ("edges", "counts", "moments")

    def __init__(self, edges: Sequence[float]) -> None:
        edges = np.asarray(edges, dtype=np.float64)
        if edges.size == 0 or np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be non-empty and strictly increasing")
        self.edges = edges
        self.counts = np.zeros(edges.size + 1, dtype=np.int64)
        self.moments = StreamingMoments()

    @classmethod
    def power_of_two(cls, max_exponent: int = 20) -> "StreamingHistogram":
        """Buckets [0,1), [1,2), [2,4), ... — the queue-depth default."""
        return cls([1.0] + [float(2 ** e) for e in range(1, max_exponent + 1)])

    @classmethod
    def integers(cls, upper: int) -> "StreamingHistogram":
        """One bucket per integer in ``[0, upper]`` (lossless for batch sizes)."""
        return cls(np.arange(1, upper + 2, dtype=np.float64))

    @classmethod
    def log_spaced(
        cls, low: float = 1e-9, high: float = 1e4, rel: float = 0.02
    ) -> "StreamingHistogram":
        """Geometric buckets with relative width ``rel`` (HDR-histogram style).

        The latency-quantile default: ~1.6k buckets spanning 1 ns to 10 000 s
        at 2% width, so :meth:`quantile` is within ~``rel`` relative error of
        the true order statistic for *any* distribution in range — unlike
        marker-based estimators, whose error on heavy-tailed queueing
        mixtures is unbounded.
        """
        if not 0 < low < high or not rel > 0:
            raise ValueError("need 0 < low < high and rel > 0")
        count = int(math.ceil(math.log(high / low) / math.log1p(rel)))
        edges = low * np.power(1.0 + rel, np.arange(count + 1))
        return cls(edges)

    def _order_stat(self, k: int, cumulative: np.ndarray) -> float:
        """Estimate of the ``k``-th (0-based) order statistic."""
        bucket = int(np.searchsorted(cumulative, k + 1, side="left"))
        low = self.edges[bucket - 1] if bucket > 0 else self.moments.min
        high = self.edges[bucket] if bucket < self.edges.size else self.moments.max
        low = max(float(low), self.moments.min)
        high = min(float(high), self.moments.max)
        if high <= low:
            return low
        # Geometric midpoint halves the relative error of log-spaced buckets;
        # arithmetic fallback keeps buckets touching zero sane.
        return math.sqrt(low * high) if low > 0 else 0.5 * (low + high)

    def quantile(self, q: float) -> float:
        """Quantile estimate, interpolated like ``np.percentile`` (linear).

        Locates the two order statistics bracketing the fractional rank
        ``q * (count - 1)``, estimates each to within its bucket's width,
        and interpolates — so accuracy is the bucket's relative width even
        when adjacent order statistics span a large gap (heavy tails).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        n = self.count
        if not n:
            return 0.0
        if q == 0.0:
            return self.moments.min  # tracked exactly by the moments
        if q == 1.0:
            return self.moments.max
        rank = q * (n - 1)
        k_low = int(math.floor(rank))
        cumulative = np.cumsum(self.counts)
        value_low = self._order_stat(k_low, cumulative)
        if rank == k_low:
            return value_low
        value_high = self._order_stat(k_low + 1, cumulative)
        return value_low + (rank - k_low) * (value_high - value_low)

    def update(self, value: float) -> None:
        bucket = int(np.searchsorted(self.edges, value, side="right"))
        self.counts[bucket] += 1
        self.moments.update(value)

    def update_many(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if not values.size:
            return
        buckets = np.searchsorted(self.edges, values, side="right")
        self.counts += np.bincount(buckets, minlength=self.counts.size)
        self.moments.update_many(values)

    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> float:
        return self.moments.mean

    @property
    def max(self) -> float:
        return self.moments.max if self.moments.count else 0.0

    def to_dict(self) -> Dict:
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            **self.moments.to_dict(),
        }


class LatencySketch:
    """Everything the serving report needs about one tenant, in O(1) memory.

    Tracks, without storing per-request data:

    * **service** moments (the backend-time view exact mode stores in
      ``per_graph_latency_ms``) — count/sum, exactly;
    * **end-to-end** latency moments + log-bucketed p50/p99 (queueing and
      batching delay included, the view ``stream_statistics`` holds in exact
      mode) — a :meth:`StreamingHistogram.log_spaced` histogram, because
      marker-based P² can be arbitrarily wrong on the bimodal/heavy-tailed
      latency mixtures queueing produces, while the log histogram's error is
      bounded by its 2% bucket width for *any* distribution;
    * **energy** sum (exact);
    * **deadline misses**, with the same float-tolerant predicate as
      :meth:`~repro.graph.StreamStatistics.deadline_miss_count`:
      ``latency > deadline`` and not within relative 1e-9 of it;
    * the set of replicas that served the tenant and the dispatch batch-size
      mean (both O(replicas) / O(1)).
    """

    __slots__ = (
        "deadline_s",
        "service",
        "latency",
        "quantiles",
        "energy_j_total",
        "deadline_misses",
        "replicas",
        "batch",
        "queue",
    )

    def __init__(self, deadline_s: Optional[float] = None) -> None:
        self.deadline_s = deadline_s
        self.service = StreamingMoments()
        self.latency = StreamingMoments()
        self.quantiles = StreamingHistogram.log_spaced()
        self.energy_j_total = 0.0
        self.deadline_misses = 0
        self.replicas: set = set()
        self.batch = StreamingMoments()
        self.queue = StreamingMoments()

    @property
    def completed(self) -> int:
        return self.latency.count

    def observe(
        self,
        latency_s: float,
        service_s: float,
        energy_j: float,
        replica: int,
        batch_size: int,
    ) -> None:
        """One completed request (the event-driven simulation's unit)."""
        self.service.update(service_s)
        self.latency.update(latency_s)
        self.quantiles.update(latency_s)
        self.energy_j_total += energy_j
        self.replicas.add(replica)
        self.batch.update(float(batch_size))
        deadline = self.deadline_s
        if deadline is not None and latency_s > deadline:
            if abs(latency_s - deadline) > 1e-9 * abs(deadline):
                self.deadline_misses += 1

    def observe_block(
        self,
        latencies_s: np.ndarray,
        services_s: np.ndarray,
        energies_j: np.ndarray,
        replicas: np.ndarray,
        batch_sizes: Optional[np.ndarray] = None,
    ) -> None:
        """A vectorised block of completed requests (the FIFO fast path)."""
        if not latencies_s.size:
            return
        self.service.update_many(services_s)
        self.latency.update_many(latencies_s)
        self.quantiles.update_many(latencies_s)
        self.energy_j_total += float(np.sum(energies_j))
        self.replicas.update(int(r) for r in np.unique(replicas))
        if batch_sizes is None:
            self.batch.update_many(np.ones(latencies_s.size))
        else:
            self.batch.update_many(np.asarray(batch_sizes, dtype=np.float64))
        deadline = self.deadline_s
        if deadline is not None:
            over = latencies_s > deadline
            close = np.abs(latencies_s - deadline) <= 1e-9 * abs(deadline)
            self.deadline_misses += int(np.sum(over & ~close))

    def p50_s(self) -> float:
        return self.quantiles.quantile(0.5)

    def p99_s(self) -> float:
        return self.quantiles.quantile(0.99)


def sketch_nbytes(obj) -> int:
    """Rough, recursion-free memory footprint of a sketch object in bytes.

    Used by the scale gate and the tier-1 memory smoke to assert that report
    memory does not grow with request count: every sketch above is a fixed
    set of scalars plus fixed-size numpy arrays, so this walks ``__slots__``
    and sums scalar slots, array ``nbytes`` and container lengths.

    The walk stops at :class:`~repro.serve.Workload` objects: a workload is
    scenario *input* (its memoised request resolution holds the tenant's
    graph pool and model, shared with the :class:`~repro.serve.Cluster`),
    not state the report accumulated, so counting it would hide whether the
    streaming side stays O(tenants + replicas).
    """
    from .workload import Workload  # late import: workload does not need sketches

    total = 0
    stack = [obj]
    seen = set()
    while stack:
        item = stack.pop()
        # Scalars are counted unconditionally: interned ints/floats share
        # identity, so id-dedup would make the total value-dependent.
        if isinstance(item, (int, float, bool)) or item is None:
            total += 8
            continue
        if isinstance(item, str):
            total += len(item)
            continue
        if id(item) in seen:
            continue
        seen.add(id(item))
        if isinstance(item, Workload):
            continue
        if isinstance(item, np.ndarray):
            total += int(item.nbytes)
        elif isinstance(item, (list, tuple, set, frozenset)):
            total += 8 * max(len(item), 1)
            stack.extend(item)
        elif isinstance(item, dict):
            total += 8 * max(len(item), 1)
            stack.extend(item.keys())
            stack.extend(item.values())
        elif hasattr(item, "__slots__"):
            slots: Tuple[str, ...] = tuple(item.__slots__)
            stack.extend(getattr(item, name) for name in slots if hasattr(item, name))
        elif hasattr(item, "__dict__"):
            stack.append(item.__dict__)
    return total
