"""``ServingReport``: what a multi-tenant serving simulation produced.

The report extends the single-stream :class:`~repro.api.InferenceReport` to
a cluster: every tenant gets a full ``InferenceReport`` (same accessors —
``mean/p50/p99_latency_ms``, ``deadline_miss_rate``, ... — with the stream
statistics describing that tenant's end-to-end experience *inside* the
cluster), and on top sit the cluster-level aggregates: per-replica and mean
utilisation, admission drops, dispatch batch sizes, and the queue-depth
trace over time.  ``to_dict``/``to_json`` nest the per-tenant summaries;
``to_csv`` emits one row per tenant.

Because a tenant's report is assembled from the same measurement, arrival
and queue-depth primitives as ``Backend.run_stream``, a single-replica
no-batching cluster reproduces ``run_stream`` bit for bit — the serving
layer adds multiplexing, never a different cycle model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..api.report import InferenceReport
from ..eval.tables import render_csv
from ..graph import StreamStatistics, queue_depths_at_arrivals
from .arrivals import ServingRequest
from .sketches import LatencySketch, StreamingHistogram
from .workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .cluster import Cluster

__all__ = [
    "ServingRecord",
    "TenantOutcome",
    "SketchTenantReport",
    "ServingReport",
    "assemble_report",
    "assemble_sketch_report",
]


@dataclass(frozen=True)
class ServingRecord:
    """One completed request: where and when it ran, and what it cost.

    ``service_s`` and ``energy_j`` are measured at the batch size the
    dispatch actually used, so batching amortisation shows up in both.
    """

    request: ServingRequest
    service_s: float
    energy_j: float
    start_s: float
    completion_s: float
    replica: int
    batch_size: int

    @property
    def latency_s(self) -> float:
        """End-to-end latency: queueing + batching delay + service."""
        return self.completion_s - self.request.arrival_s


@dataclass
class SketchTenantReport:
    """Sketch-mode stand-in for a tenant's :class:`~repro.api.InferenceReport`.

    Exposes the same scalar accessors :meth:`TenantOutcome.row` and the
    planners read (``mean/p50/p99/max_latency_ms``, ``deadline_miss_*``,
    ``max_queue_depth``, ``energy_mj_per_graph``, ``num_graphs``,
    ``total_energy_mj``) backed by a :class:`~repro.serve.sketches.LatencySketch`
    instead of per-request arrays, so memory is O(1) in the request count.
    Counts, means, maxima, misses and energy are exact (modulo summation
    order across chunks); p50/p99 are P² estimates within the documented
    sketch tolerance.  There is no ``stream_statistics`` — callers that need
    raw arrays must run exact mode.
    """

    backend: str
    model: str
    dataset: str
    batch_size: int
    config_description: str
    sketch: LatencySketch
    one_time_overhead_ms: float = 0.0
    extras: Dict = field(default_factory=dict)

    # -- sizes ----------------------------------------------------------------
    @property
    def num_graphs(self) -> int:
        return self.sketch.completed

    # -- latency --------------------------------------------------------------
    @property
    def mean_latency_ms(self) -> float:
        """Mean service latency with the one-time cost amortised (exact)."""
        if not self.num_graphs:
            return 0.0
        return float(
            self.sketch.service.mean * 1e3 + self.one_time_overhead_ms / self.num_graphs
        )

    @property
    def p50_latency_ms(self) -> float:
        return self.sketch.p50_s() * 1e3

    @property
    def p99_latency_ms(self) -> float:
        return self.sketch.p99_s() * 1e3

    @property
    def max_latency_ms(self) -> float:
        return self.sketch.latency.max * 1e3 if self.num_graphs else 0.0

    # -- energy ---------------------------------------------------------------
    @property
    def total_energy_mj(self) -> float:
        return self.sketch.energy_j_total * 1e3

    @property
    def energy_mj_per_graph(self) -> float:
        if not self.num_graphs:
            return 0.0
        return self.total_energy_mj / self.num_graphs

    # -- deadlines / queueing -------------------------------------------------
    @property
    def deadline_miss_count(self) -> int:
        return self.sketch.deadline_misses

    @property
    def deadline_miss_rate(self) -> float:
        if not self.num_graphs:
            return 0.0
        return self.sketch.deadline_misses / self.num_graphs

    @property
    def max_queue_depth(self) -> int:
        queue = self.sketch.queue
        return int(queue.max) if queue.count else 0

    @property
    def stream_statistics(self) -> None:
        """Sketch mode stores no per-request arrays; always ``None``."""
        return None


@dataclass
class TenantOutcome:
    """One tenant's view of the simulation.

    ``report`` is a full :class:`~repro.api.InferenceReport` in exact mode
    and a :class:`SketchTenantReport` (same scalar accessors, O(1) memory)
    in sketch mode.
    """

    workload: Workload
    report: InferenceReport
    submitted: int
    completed: int
    dropped: int
    #: Requests shed by adaptive admission (dynamic clusters only).
    shed: int = 0

    def row(self) -> Dict:
        """Flat per-tenant summary (one CSV/table row)."""
        report = self.report
        return {
            "tenant": self.workload.tenant,
            "model": report.model,
            "dataset": report.dataset,
            "priority": self.workload.priority,
            "submitted": self.submitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "shed": self.shed,
            "mean_latency_ms": report.mean_latency_ms,
            "p50_latency_ms": report.p50_latency_ms,
            "p99_latency_ms": report.p99_latency_ms,
            "deadline_miss_rate": report.deadline_miss_rate,
            "deadline_miss_count": report.deadline_miss_count,
            "max_queue_depth": report.max_queue_depth,
            "energy_mj_per_graph": report.energy_mj_per_graph,
        }


@dataclass
class ServingReport:
    """Uniform result of one :meth:`Cluster.serve` run."""

    backend: str
    policy: str
    num_replicas: int
    max_batch_size: int
    batch_timeout_s: float
    horizon_s: float
    tenants: Dict[str, TenantOutcome]
    per_replica_utilisation: np.ndarray
    batch_sizes: np.ndarray
    queue_depth_times_s: np.ndarray
    queue_depth_trace: np.ndarray
    records: List[ServingRecord] = field(default_factory=list, repr=False)
    dropped_requests: List[ServingRequest] = field(default_factory=list, repr=False)
    #: "exact" (array-backed, the oracle) or "sketch" (online accumulators).
    mode: str = "exact"
    #: Sketch mode only: cluster queue depth sampled at arrival instants.
    queue_depth_hist: Optional[StreamingHistogram] = field(default=None, repr=False)
    #: Sketch mode only: dispatch batch sizes (lossless integer buckets).
    batch_size_hist: Optional[StreamingHistogram] = field(default=None, repr=False)
    #: Requests shed by adaptive admission (exact mode keeps the objects).
    shed_requests: List[ServingRequest] = field(default_factory=list, repr=False)
    #: Dynamic runs, exact mode: rented-replica count at every change.
    replica_count_times_s: Optional[np.ndarray] = field(default=None, repr=False)
    replica_count_trace: Optional[np.ndarray] = field(default=None, repr=False)
    #: Dynamic runs, sketch mode: lossless integer histogram of the rented
    #: replica count (one update per change — fixed buckets, O(1) memory).
    replica_count_hist: Optional[StreamingHistogram] = field(default=None, repr=False)
    #: Dynamic runs: integral of the rented-replica count over the horizon
    #: (the cost a deployment would pay); ``None`` for static runs.
    replica_seconds: Optional[float] = None
    #: Dynamic runs: lifecycle event counters (scale_up_events, failures, ...).
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Power-modelled runs: per-replica ``∫ power dt`` over the horizon (J).
    replica_energy_j: Optional[np.ndarray] = field(default=None, repr=False)
    #: Power-modelled runs: total cluster energy — the plain Python sum of
    #: the per-replica integrals, so conservation is exact, not approximate.
    energy_j: Optional[float] = None
    #: Carbon-traced runs: ``∫ power × intensity dt`` over the horizon (gCO2).
    carbon_gco2: Optional[float] = None

    # -- cluster-level accessors ----------------------------------------------
    @property
    def tenant_reports(self) -> Dict[str, InferenceReport]:
        return {name: outcome.report for name, outcome in self.tenants.items()}

    @property
    def submitted(self) -> int:
        return sum(outcome.submitted for outcome in self.tenants.values())

    @property
    def completed(self) -> int:
        return sum(outcome.completed for outcome in self.tenants.values())

    @property
    def dropped(self) -> int:
        return sum(outcome.dropped for outcome in self.tenants.values())

    @property
    def shed(self) -> int:
        return sum(outcome.shed for outcome in self.tenants.values())

    @property
    def is_dynamic(self) -> bool:
        """Whether this run went through the dynamic (lifecycle-aware) loop."""
        return self.replica_seconds is not None

    @property
    def peak_replicas(self) -> int:
        """Largest rented-replica count over the run (static: the pool size)."""
        if self.replica_count_trace is not None and self.replica_count_trace.size:
            return int(self.replica_count_trace.max())
        if self.replica_count_hist is not None and self.replica_count_hist.count:
            return int(self.replica_count_hist.max)
        return self.num_replicas

    @property
    def cluster_utilisation(self) -> float:
        """Mean busy fraction across replicas over the horizon."""
        if not self.per_replica_utilisation.size:
            return 0.0
        return float(self.per_replica_utilisation.mean())

    @property
    def deadline_miss_rate(self) -> float:
        """Cluster-wide miss rate over every completed request."""
        total = sum(o.completed for o in self.tenants.values())
        if not total:
            return 0.0
        misses = sum(o.report.deadline_miss_count for o in self.tenants.values())
        return misses / total

    @property
    def max_queue_depth(self) -> int:
        if self.queue_depth_trace.size:
            return int(np.max(self.queue_depth_trace))
        if self.queue_depth_hist is not None and self.queue_depth_hist.count:
            # The maximum queue depth is always attained at an arrival
            # instant (depth only grows at admissions), so the sketch-mode
            # arrival-instant sampling sees the same maximum the exact
            # every-instant trace records.
            return int(self.queue_depth_hist.max)
        return 0

    @property
    def mean_batch_size(self) -> float:
        if self.batch_sizes.size:
            return float(self.batch_sizes.mean())
        if self.batch_size_hist is not None and self.batch_size_hist.count:
            return float(self.batch_size_hist.mean)
        return 0.0

    def queue_depth_series(self) -> Dict[str, np.ndarray]:
        """Cluster queue depth over time (one sample per simulation event)."""
        return {"time_s": self.queue_depth_times_s, "depth": self.queue_depth_trace}

    # -- export ---------------------------------------------------------------
    def tenant_rows(self) -> List[Dict]:
        """One flat summary row per tenant, in workload order."""
        return [outcome.row() for outcome in self.tenants.values()]

    def to_dict(self) -> Dict:
        """Nested, JSON-serialisable summary (scalars only)."""
        payload = {
            "backend": self.backend,
            "policy": self.policy,
            "mode": self.mode,
            "replicas": self.num_replicas,
            "max_batch_size": self.max_batch_size,
            "batch_timeout_s": self.batch_timeout_s,
            "horizon_s": self.horizon_s,
            "submitted": self.submitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "shed": self.shed,
            "deadline_miss_rate": self.deadline_miss_rate,
            "cluster_utilisation": self.cluster_utilisation,
            "per_replica_utilisation": [
                float(u) for u in self.per_replica_utilisation
            ],
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_size": self.mean_batch_size,
            "tenants": {
                row.pop("tenant"): row for row in (o.row() for o in self.tenants.values())
            },
        }
        if self.is_dynamic:
            payload["replica_seconds"] = float(self.replica_seconds)
            payload["peak_replicas"] = self.peak_replicas
            payload["event_counts"] = dict(self.event_counts)
            if self.replica_count_trace is not None:
                payload["replica_count"] = {
                    "time_s": [float(t) for t in self.replica_count_times_s],
                    "count": [int(c) for c in self.replica_count_trace],
                }
            elif self.replica_count_hist is not None:
                hist = self.replica_count_hist
                payload["replica_count"] = {
                    "min": float(hist.moments.min) if hist.count else 0.0,
                    "max": float(hist.max),
                    "mean": float(hist.mean) if hist.count else 0.0,
                    "changes": int(hist.count),
                }
            if self.replica_energy_j is not None:
                payload["energy_j"] = float(self.energy_j)
                payload["replica_energy_j"] = [
                    float(e) for e in self.replica_energy_j
                ]
                if self.carbon_gco2 is not None:
                    payload["carbon_gco2"] = float(self.carbon_gco2)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_csv(self, path: Optional[str] = None) -> str:
        """Per-tenant rows as CSV text; when ``path`` is given, write the file."""
        text = render_csv(self.tenant_rows())
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text

    def summary(self) -> str:
        """One-line human-readable summary."""
        losses = f"{self.dropped} dropped"
        if self.shed:
            losses += f", {self.shed} shed"
        text = (
            f"{self.policy} on {self.num_replicas}x {self.backend}: "
            f"{self.completed}/{self.submitted} served "
            f"({losses}), miss rate {self.deadline_miss_rate:.1%}, "
            f"utilisation {self.cluster_utilisation:.1%}, "
            f"max queue {self.max_queue_depth}"
        )
        if self.is_dynamic:
            text += (
                f", peak replicas {self.peak_replicas}, "
                f"replica-seconds {self.replica_seconds:.3g}"
            )
        if self.energy_j is not None:
            text += f", energy {self.energy_j:.3g}J"
            if self.carbon_gco2 is not None:
                text += f", carbon {self.carbon_gco2:.3g}g"
        return text


def assemble_report(
    cluster: "Cluster",
    records: Sequence[ServingRecord],
    dropped: Sequence[ServingRequest],
    busy_time: Sequence[float],
    batch_sizes: Sequence[int],
    trace_times: np.ndarray,
    trace_depths: np.ndarray,
    duration_s: Optional[float],
    shed: Sequence[ServingRequest] = (),
    replica_count_times_s: Optional[np.ndarray] = None,
    replica_count_trace: Optional[np.ndarray] = None,
    replica_seconds_state: Optional[Tuple[float, float, int]] = None,
    event_counts: Optional[Dict[str, int]] = None,
    power_state: Optional[Tuple] = None,
) -> ServingReport:
    """Build the :class:`ServingReport` from raw simulation records.

    Aggregation is vectorised: the record attributes are pulled into flat
    numpy arrays in one pass, and every per-tenant view (latency sample,
    completion ordering, replica set, batch-size mean) is a mask + stable
    argsort over those arrays rather than per-tenant Python loops.  The
    values are bit-identical to the loop formulation — same floats, same
    (request-index) ordering — which the serving contract tests pin.

    The dynamic loop additionally passes the shed-request list, the rented
    replica-count timeline, the partial replica-seconds integral
    ``(integral, last_change_s, rented)`` — finalised here once the horizon
    is known — and the lifecycle event counters.
    """
    num_records = len(records)
    completions_all = np.fromiter(
        (record.completion_s for record in records), dtype=np.float64, count=num_records
    )
    arrivals_all = np.fromiter(
        (record.request.arrival_s for record in records),
        dtype=np.float64,
        count=num_records,
    )
    service_all = np.fromiter(
        (record.service_s for record in records), dtype=np.float64, count=num_records
    )
    energy_all = np.fromiter(
        (record.energy_j for record in records), dtype=np.float64, count=num_records
    )
    replica_all = np.fromiter(
        (record.replica for record in records), dtype=np.int64, count=num_records
    )
    batch_all = np.fromiter(
        (record.batch_size for record in records), dtype=np.int64, count=num_records
    )
    request_index_all = np.fromiter(
        (record.request.index for record in records), dtype=np.int64, count=num_records
    )
    tenant_position = {w.tenant: i for i, w in enumerate(cluster.workloads)}
    tenant_all = np.fromiter(
        (tenant_position[record.request.tenant] for record in records),
        dtype=np.int64,
        count=num_records,
    )

    horizon_candidates = [duration_s or 0.0]
    if num_records:
        horizon_candidates.append(float(completions_all.max()))
    if dropped:
        horizon_candidates.append(max(request.arrival_s for request in dropped))
    if shed:
        horizon_candidates.append(max(request.arrival_s for request in shed))
    horizon = max(horizon_candidates)
    # Busy time is clamped to the horizon: with `duration_s` the horizon
    # already covers the last completion, but a degraded replica's final
    # batch (or a caller-supplied short horizon) can finish past it, and
    # utilisation must never read above 1.0.
    utilisation = (
        np.minimum(np.array(busy_time, dtype=np.float64), horizon) / horizon
        if horizon > 0
        else np.zeros(len(busy_time))
    )

    dropped_by_tenant: Dict[str, int] = {w.tenant: 0 for w in cluster.workloads}
    for request in dropped:
        dropped_by_tenant[request.tenant] += 1
    shed_by_tenant: Dict[str, int] = {w.tenant: 0 for w in cluster.workloads}
    for request in shed:
        shed_by_tenant[request.tenant] += 1

    tenants: Dict[str, TenantOutcome] = {}
    for position, workload in enumerate(cluster.workloads):
        member = np.nonzero(tenant_all == position)[0]
        # Per-tenant records in request-index order (indices are unique per
        # tenant, so the stable sort reproduces the historical ordering).
        order = member[np.argsort(request_index_all[member], kind="stable")]
        service = cluster.services[workload.tenant]
        arrivals = arrivals_all[order]
        completions = completions_all[order]
        service_s = service_all[order]
        energies_j = energy_all[order]
        statistics = StreamStatistics(
            per_graph_latency_s=completions - arrivals,
            completion_times_s=completions,
            deadline_s=workload.deadline_s,
            queue_depth_trace=queue_depths_at_arrivals(arrivals, completions),
        )
        extras = dict(service.base.extras)
        extras["serving"] = {
            "replicas": [int(r) for r in np.unique(replica_all[order])],
            "mean_batch_size": (
                float(batch_all[order].mean()) if order.size else 0.0
            ),
        }
        report = InferenceReport(
            backend=cluster.backend,
            model=service.resolved.model_name,
            dataset=service.resolved.dataset_name,
            batch_size=workload.request.batch_size,
            config_description=service.resolved.config.describe(),
            per_graph_latency_ms=service_s * 1e3,
            per_graph_energy_mj=energies_j * 1e3,
            one_time_overhead_ms=service.base.one_time_overhead_s * 1e3,
            stream_statistics=statistics,
            extras=extras,
        )
        dropped_count = dropped_by_tenant[workload.tenant]
        shed_count = shed_by_tenant[workload.tenant]
        tenants[workload.tenant] = TenantOutcome(
            workload=workload,
            report=report,
            submitted=int(order.size) + dropped_count + shed_count,
            completed=int(order.size),
            dropped=dropped_count,
            shed=shed_count,
        )

    policy_name = getattr(cluster.policy, "name", str(cluster.policy))
    replica_energy, total_energy, carbon_g = _finalise_power(power_state, horizon)
    return ServingReport(
        backend=cluster.backend,
        policy=policy_name,
        num_replicas=cluster.num_replicas,
        max_batch_size=cluster.max_batch_size,
        batch_timeout_s=cluster.batch_timeout_s,
        horizon_s=float(horizon),
        tenants=tenants,
        per_replica_utilisation=utilisation,
        batch_sizes=np.array(batch_sizes, dtype=np.int64),
        queue_depth_times_s=trace_times,
        queue_depth_trace=trace_depths,
        records=list(records),
        dropped_requests=list(dropped),
        shed_requests=list(shed),
        replica_count_times_s=replica_count_times_s,
        replica_count_trace=replica_count_trace,
        replica_seconds=_finalise_replica_seconds(replica_seconds_state, horizon),
        event_counts=dict(event_counts) if event_counts else {},
        replica_energy_j=replica_energy,
        energy_j=total_energy,
        carbon_gco2=carbon_g,
    )


def _finalise_replica_seconds(
    state: Optional[Tuple[float, float, int]], horizon: float
) -> Optional[float]:
    """Close the rented-replica integral at the horizon.

    ``state`` is ``(integral_to_last_change, last_change_s, rented_now)`` as
    maintained by the dynamic loop; the final segment runs from the last
    pool change to the horizon.  Static runs pass ``None`` and stay ``None``
    (``ServingReport.is_dynamic`` keys off this).
    """
    if state is None:
        return None
    integral, last_change_s, rented = state
    return float(integral + rented * (horizon - last_change_s))


def _finalise_power(
    state: Optional[Tuple], horizon: float
) -> Tuple[Optional[np.ndarray], Optional[float], Optional[float]]:
    """Close the power and carbon integrals at the horizon.

    ``state`` is the dynamic loop's power ledger — per-replica
    ``(accumulated J, current watts, last change time)`` columns plus the
    cluster draw, carbon accumulator and trace — exactly as maintained
    online; the final segment of each replica runs from its last draw
    change to the horizon, and the cluster total is the plain Python sum of
    the per-replica integrals (exact conservation).  Runs without a power
    model pass ``None`` and every output stays ``None``.
    """
    if state is None:
        return None, None, None
    energy_acc, watts, last_w_change, power_w, carbon_g, last_c_change, trace = state
    replica_energy = np.array(
        [
            e + w * (horizon - t)
            for e, w, t in zip(energy_acc, watts, last_w_change)
        ],
        dtype=np.float64,
    )
    total = float(sum(replica_energy.tolist()))
    carbon: Optional[float] = None
    if trace is not None:
        carbon = float(carbon_g + power_w * trace.integral_g_per_j(last_c_change, horizon))
    return replica_energy, total, carbon


def assemble_sketch_report(
    cluster: "Cluster",
    sketches: Dict[str, LatencySketch],
    dropped_by_tenant: Dict[str, int],
    busy_time: Sequence[float],
    batch_size_hist: StreamingHistogram,
    queue_depth_hist: StreamingHistogram,
    max_completion_s: float,
    max_dropped_arrival_s: float,
    duration_s: Optional[float],
    shed_by_tenant: Optional[Dict[str, int]] = None,
    max_shed_arrival_s: float = -np.inf,
    replica_count_hist: Optional[StreamingHistogram] = None,
    replica_seconds_state: Optional[Tuple[float, float, int]] = None,
    event_counts: Optional[Dict[str, int]] = None,
    power_state: Optional[Tuple] = None,
) -> ServingReport:
    """Build a sketch-mode :class:`ServingReport` from online accumulators.

    The O(requests) inputs of :func:`assemble_report` are replaced by one
    :class:`~repro.serve.sketches.LatencySketch` per tenant plus two
    cluster-level histograms, so the report's memory is O(tenants +
    replicas).  Horizon and utilisation replicate the exact path's float
    operations (same max candidates, same division), keeping utilisation
    bit-identical between modes.
    """
    horizon_candidates = [duration_s or 0.0]
    if max_completion_s > -np.inf:
        horizon_candidates.append(float(max_completion_s))
    if max_dropped_arrival_s > -np.inf:
        horizon_candidates.append(float(max_dropped_arrival_s))
    if max_shed_arrival_s > -np.inf:
        horizon_candidates.append(float(max_shed_arrival_s))
    horizon = max(horizon_candidates)
    # Same horizon clamp as the exact path — identical float operations keep
    # sketch-mode utilisation bit-identical to the exact oracle.
    utilisation = (
        np.minimum(np.array(busy_time, dtype=np.float64), horizon) / horizon
        if horizon > 0
        else np.zeros(len(busy_time))
    )
    shed_by_tenant = shed_by_tenant or {}

    tenants: Dict[str, TenantOutcome] = {}
    for workload in cluster.workloads:
        sketch = sketches[workload.tenant]
        service = cluster.services[workload.tenant]
        extras = dict(service.base.extras)
        extras["serving"] = {
            "replicas": sorted(int(r) for r in sketch.replicas),
            "mean_batch_size": (
                float(sketch.batch.mean) if sketch.completed else 0.0
            ),
        }
        report = SketchTenantReport(
            backend=cluster.backend,
            model=service.resolved.model_name,
            dataset=service.resolved.dataset_name,
            batch_size=workload.request.batch_size,
            config_description=service.resolved.config.describe(),
            sketch=sketch,
            one_time_overhead_ms=service.base.one_time_overhead_s * 1e3,
            extras=extras,
        )
        dropped_count = dropped_by_tenant.get(workload.tenant, 0)
        shed_count = shed_by_tenant.get(workload.tenant, 0)
        tenants[workload.tenant] = TenantOutcome(
            workload=workload,
            report=report,
            submitted=sketch.completed + dropped_count + shed_count,
            completed=sketch.completed,
            dropped=dropped_count,
            shed=shed_count,
        )

    policy_name = getattr(cluster.policy, "name", str(cluster.policy))
    replica_energy, total_energy, carbon_g = _finalise_power(power_state, horizon)
    return ServingReport(
        backend=cluster.backend,
        policy=policy_name,
        num_replicas=cluster.num_replicas,
        max_batch_size=cluster.max_batch_size,
        batch_timeout_s=cluster.batch_timeout_s,
        horizon_s=float(horizon),
        tenants=tenants,
        per_replica_utilisation=utilisation,
        batch_sizes=np.zeros(0, dtype=np.int64),
        queue_depth_times_s=np.zeros(0, dtype=np.float64),
        queue_depth_trace=np.zeros(0, dtype=np.int64),
        mode="sketch",
        queue_depth_hist=queue_depth_hist,
        batch_size_hist=batch_size_hist,
        replica_count_hist=replica_count_hist,
        replica_seconds=_finalise_replica_seconds(replica_seconds_state, horizon),
        event_counts=dict(event_counts) if event_counts else {},
        replica_energy_j=replica_energy,
        energy_j=total_energy,
        carbon_gco2=carbon_g,
    )
