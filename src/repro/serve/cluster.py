"""The multi-tenant serving cluster: replicas, dispatch policies, batching.

``Cluster`` multiplexes the merged request sequence of a
:class:`~repro.serve.LoadGenerator` across ``num_replicas`` identical
instances of one registered :class:`~repro.api.Backend`.  The simulation is
event-driven and fully deterministic: arrivals, batch-release timers and
replica completions are processed in time order, and every tie is broken by
a fixed (kind, sequence) rule.

Service times come from the backend's ``measure`` pass — the exact per-graph
latencies ``run``/``run_stream`` report — so a single replica with FIFO
dispatch and no batching reproduces
:func:`~repro.graph.simulate_stream_consumption` bit for bit (this is
asserted by the cross-backend serving contract tests).  With dynamic
batching, a dispatch of ``k`` same-tenant requests is re-measured at batch
size ``k``: platform backends amortise their framework overhead, FlowGNN
(a batch-1 streaming architecture) is indifferent.

Dispatch policies:

* ``round_robin``   — requests are pinned to replicas in rotation at
  arrival; each replica drains its own queue FIFO;
* ``least_loaded``  — requests are pinned at arrival to the replica with
  the least outstanding work (remaining service + queued service);
* ``edf``           — SLO-aware earliest-deadline-first: one shared queue,
  a free replica takes the request with the earliest absolute deadline
  (ties: higher priority, then arrival order).  Best-effort requests sort
  after every deadline-carrying one.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..api import Backend, InferenceRequest, Measurement, MeasurementCache, get_backend
from .arrivals import ServingRequest
from .report import ServingRecord, ServingReport, assemble_report
from .workload import Workload

__all__ = [
    "DispatchPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "EarliestDeadlinePolicy",
    "POLICY_NAMES",
    "get_policy",
    "register_policy",
    "TenantService",
    "Cluster",
]


# ---------------------------------------------------------------------------
# Service model: what one replica spends on one request
# ---------------------------------------------------------------------------
class TenantService:
    """Cycle-accurate service-time oracle for one tenant on one backend.

    The base profile is measured once via ``backend.measure`` (falling back
    to ``run`` for third-party backends without it); batch-size variants are
    measured lazily and cached, so dynamic batching only pays for the batch
    sizes that actually occur.  Replicas are identical hardware and share
    one ``TenantService``.

    A :class:`~repro.api.MeasurementCache` can back the lazy measurements;
    the serving-scenario sweep engine (:mod:`repro.plan`) pre-measures every
    profile a sweep can need into one cache and ships it to the worker
    processes, so no scenario ever re-measures the backend.
    """

    def __init__(
        self,
        workload: Workload,
        backend: Backend,
        cache: Optional[MeasurementCache] = None,
    ) -> None:
        self.workload = workload
        self._backend = backend
        self._cache = cache
        self.resolved = workload.request.resolve()
        self._by_batch: Dict[int, Measurement] = {}
        self._base = self.measurement(workload.request.batch_size)

    def _request_at(self, batch_size: int) -> InferenceRequest:
        if batch_size == self.workload.request.batch_size:
            return self.workload.request
        return InferenceRequest(
            model=self.resolved.model,
            dataset=self.resolved.graphs,
            config=self.workload.request.config,
            batch_size=batch_size,
        )

    def _measure(self, request: InferenceRequest) -> Measurement:
        measure = getattr(self._backend, "measure", None)
        if measure is not None:
            return measure(request)
        report = self._backend.run(request)
        return Measurement(
            latencies_s=report.per_graph_latency_ms * 1e-3,
            energies_j=report.per_graph_energy_mj * 1e-3,
            one_time_overhead_s=report.one_time_overhead_ms * 1e-3,
            extras=dict(report.extras),
        )

    def _measure_profile(self, batch_size: int) -> Measurement:
        if self._cache is None:
            return self._measure(self._request_at(batch_size))
        return self._cache.get_or_measure(
            self._backend.name,
            self.workload.request,
            batch_size,
            lambda: self._measure(self._request_at(batch_size)),
        )

    @property
    def base(self) -> Measurement:
        return self._base

    @property
    def base_batch_size(self) -> int:
        """The workload's declared batch size (what ``run_stream`` assumes)."""
        return self.workload.request.batch_size

    @property
    def num_graphs(self) -> int:
        return len(self.resolved.graphs)

    def measurement(self, batch_size: int = 1) -> Measurement:
        """The backend's profile when requests are batched ``batch_size`` deep."""
        cached = self._by_batch.get(batch_size)
        if cached is None:
            cached = self._measure_profile(batch_size)
            self._by_batch[batch_size] = cached
        return cached

    def latencies_s(self, batch_size: int = 1) -> np.ndarray:
        """Per-graph service latencies at ``batch_size``."""
        return self.measurement(batch_size).latencies_s

    def energies_j(self, batch_size: int = 1) -> np.ndarray:
        """Per-graph energies at ``batch_size`` (batching amortises overhead)."""
        return self.measurement(batch_size).energies_j

    def service_s(self, graph_index: int, batch_size: int = 1) -> float:
        return float(self.latencies_s(batch_size)[graph_index])

    def mean_service_s(self) -> float:
        return float(self._base.latencies_s.mean()) if self._base.latencies_s.size else 0.0


# ---------------------------------------------------------------------------
# Dispatch policies
# ---------------------------------------------------------------------------
@dataclass
class _QueueItem:
    """A pending request plus the cluster's dispatch bookkeeping."""

    request: ServingRequest
    seq: int                        # global arrival order
    service_s: float                # batch-1 service time (backlog estimates)
    replica: Optional[int] = None   # pinned replica, None = any


class DispatchPolicy(ABC):
    """Where a request runs and in which order a free replica picks work."""

    name: str = "abstract"

    def reset(self, num_replicas: int) -> None:
        """Called at the start of every simulation."""

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        """Replica to pin ``item`` to at arrival; ``None`` leaves it shared."""
        return None

    @abstractmethod
    def order_key(self, item: _QueueItem) -> Tuple:
        """Sort key among a replica's eligible items (ties: arrival order).

        The key must be **stable while the request waits**: the dispatcher
        computes it once at admission and keeps the pending queue in
        key-ordered heaps, so a key that depends on simulation time (e.g.
        ageing priorities) would be frozen at its arrival value.  Every
        built-in policy (deadline, priority, sequence) satisfies this; a
        registered custom policy must too.
        """


class RoundRobinPolicy(DispatchPolicy):
    """Pin requests to replicas in rotation; per-replica FIFO."""

    name = "round_robin"

    def reset(self, num_replicas: int) -> None:
        self._counter = 0
        self._num_replicas = num_replicas

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        replica = self._counter % self._num_replicas
        self._counter += 1
        return replica

    def order_key(self, item: _QueueItem) -> Tuple:
        return ()


class LeastLoadedPolicy(DispatchPolicy):
    """Pin each arrival to the replica with the least outstanding work."""

    name = "least_loaded"

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        backlog = [
            max(state.busy_until[r] - state.now, 0.0) + state.queued_work[r]
            for r in range(len(state.busy_until))
        ]
        return int(np.argmin(backlog))

    def order_key(self, item: _QueueItem) -> Tuple:
        return ()


class EarliestDeadlinePolicy(DispatchPolicy):
    """Shared queue ordered by absolute deadline, then priority (SLO-aware)."""

    name = "edf"

    def order_key(self, item: _QueueItem) -> Tuple:
        return (item.request.absolute_deadline_s, -item.request.priority)


_POLICY_REGISTRY: Dict[str, Callable[[], DispatchPolicy]] = {}

#: Registered policy names, in registration order (stable for CLI choices).
POLICY_NAMES: List[str] = []


def register_policy(name: str, factory: Callable[[], DispatchPolicy]) -> None:
    """Register a dispatch-policy factory (mirrors ``register_backend``).

    The policy's ``order_key`` must be stable for a waiting request (see
    :meth:`DispatchPolicy.order_key`): keys are computed once at admission.
    """
    key = name.lower()
    if key not in _POLICY_REGISTRY:
        POLICY_NAMES.append(key)
    _POLICY_REGISTRY[key] = factory


def get_policy(name: str) -> DispatchPolicy:
    key = name.lower()
    if key not in _POLICY_REGISTRY:
        raise KeyError(f"unknown policy {name!r}; registered: {POLICY_NAMES}")
    return _POLICY_REGISTRY[key]()


register_policy("round_robin", RoundRobinPolicy)
register_policy("least_loaded", LeastLoadedPolicy)
register_policy("edf", EarliestDeadlinePolicy)


# ---------------------------------------------------------------------------
# Event-driven simulation
# ---------------------------------------------------------------------------
# Event kinds, in tie-break order at equal timestamps: completions free
# replicas before the arrivals/timers of the same instant are considered.
_COMPLETION, _ARRIVAL, _TIMER = 0, 1, 2


@dataclass
class _SimState:
    """Mutable simulation state shared with policy hooks."""

    busy_until: List[float]
    queued_work: List[float]
    now: float = 0.0


@dataclass
class Cluster:
    """A pool of identical backend replicas serving many tenants.

    Parameters
    ----------
    workloads:
        The tenants (unique names).
    backend:
        Registered backend name; every replica is one instance of it.
    num_replicas:
        Pool size.
    policy:
        Dispatch policy name (``round_robin`` / ``least_loaded`` / ``edf``)
        or a :class:`DispatchPolicy` instance.
    max_batch_size / batch_timeout_s:
        Dynamic batching: a replica groups up to ``max_batch_size``
        same-tenant requests per dispatch, waiting at most
        ``batch_timeout_s`` after the oldest request's arrival for the
        batch to fill.  The defaults (1, 0) disable batching.
    queue_capacity:
        Bound on the number of queued requests; arrivals beyond it are
        dropped (admission control).  ``None`` means unbounded.
    measurement_cache:
        Optional :class:`~repro.api.MeasurementCache` backing the tenant
        services.  The serving-scenario sweep engine pre-measures every
        profile into one cache so no scenario re-measures the backend.
    """

    workloads: Sequence[Workload]
    backend: str = "flowgnn"
    num_replicas: int = 1
    policy: Union[str, DispatchPolicy] = "round_robin"
    max_batch_size: int = 1
    batch_timeout_s: float = 0.0
    queue_capacity: Optional[int] = None
    measurement_cache: Optional[MeasurementCache] = None
    services: Dict[str, TenantService] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.workloads = list(self.workloads)
        if not self.workloads:
            raise ValueError("Cluster needs at least one workload")
        names = [w.tenant for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique; got {names}")
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
        if isinstance(self.policy, str):
            self.policy = get_policy(self.policy)
        backend_instance = get_backend(self.backend)
        self.backend = backend_instance.name
        self.services = {
            w.tenant: TenantService(w, backend_instance, cache=self.measurement_cache)
            for w in self.workloads
        }

    def with_replicas(
        self, num_replicas: int, policy: Union[str, DispatchPolicy, None] = None
    ) -> "Cluster":
        """A resized/re-policied view sharing the measured tenant services.

        Capacity planning sweeps replica counts; re-measuring the backend per
        point would dominate the sweep, so the clone reuses this cluster's
        :class:`TenantService` objects (replicas are identical hardware).
        """
        return self.with_options(num_replicas=num_replicas, policy=policy)

    def with_options(
        self,
        num_replicas: Optional[int] = None,
        policy: Union[str, DispatchPolicy, None] = None,
        max_batch_size: Optional[int] = None,
        batch_timeout_s: Optional[float] = None,
        queue_capacity: Union[int, None, object] = ...,
    ) -> "Cluster":
        """A re-configured view of this cluster sharing its measured services.

        Any combination of pool size, dispatch policy, batching knobs and
        queue capacity can be overridden; everything else (tenants, backend,
        measured :class:`TenantService` profiles) is shared with ``self``.
        This is the primitive the serving-scenario sweep engine builds every
        grid point from without re-measuring.  ``queue_capacity`` uses ``...``
        as its "keep current" default because ``None`` means unbounded.
        """
        clone = Cluster.__new__(Cluster)
        clone.__dict__.update(self.__dict__)
        if num_replicas is not None:
            if num_replicas < 1:
                raise ValueError("num_replicas must be >= 1")
            clone.num_replicas = int(num_replicas)
        if policy is not None:
            clone.policy = get_policy(policy) if isinstance(policy, str) else policy
        if max_batch_size is not None:
            if max_batch_size < 1:
                raise ValueError("max_batch_size must be >= 1")
            clone.max_batch_size = int(max_batch_size)
        if batch_timeout_s is not None:
            if batch_timeout_s < 0:
                raise ValueError("batch_timeout_s must be >= 0")
            clone.batch_timeout_s = float(batch_timeout_s)
        if queue_capacity is not ...:
            if queue_capacity is not None and queue_capacity < 1:
                raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
            clone.queue_capacity = queue_capacity
        return clone

    def mean_service_s(self) -> float:
        """Mean batch-1 service time across tenants (capacity heuristics)."""
        means = [service.mean_service_s() for service in self.services.values()]
        return float(np.mean(means)) if means else 0.0

    # -- simulation -----------------------------------------------------------
    def serve(
        self,
        requests: Sequence[ServingRequest],
        duration_s: Optional[float] = None,
    ) -> ServingReport:
        """Run the event-driven simulation over ``requests``.

        ``duration_s`` only stretches the utilisation horizon (e.g. to the
        load generator's configured duration); every submitted request is
        served to completion regardless.

        The dispatcher keeps the pending requests in policy-ordered heaps —
        one *lane* per replica for pinned requests plus one shared lane —
        instead of re-sorting the whole queue at every event like the
        reference implementation
        (:func:`repro.serve.reference.reference_serve`).  Without dynamic
        batching a dispatch is a heap pop, O(log n); with batching the
        selection scans (and pushes back) only as far as the batching
        decision requires, which degrades toward the reference's full walk
        only when no batch is releasable.  The two are bit-identical; the
        contract test and ``benchmarks/test_serve_speedup.py`` hold them
        together.
        """
        policy = self.policy
        policy.reset(self.num_replicas)
        for request in requests:
            if request.tenant not in self.services:
                raise ValueError(f"request for unknown tenant {request.tenant!r}")
        items = [
            _QueueItem(
                request=request,
                seq=seq,
                service_s=self.services[request.tenant].service_s(
                    request.graph_index,
                    batch_size=self.services[request.tenant].base_batch_size,
                ),
            )
            for seq, request in enumerate(
                sorted(requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index))
            )
        ]

        state = _SimState(
            busy_until=[0.0] * self.num_replicas,
            queued_work=[0.0] * self.num_replicas,
        )
        busy_time = [0.0] * self.num_replicas
        # Policy-ordered lanes.  An entry is (order_key + (seq,), seq); keys
        # are computed once at admission, which requires policy order keys to
        # be stable while a request waits (true of every built-in policy).
        lanes = _Lanes(
            shared=[],
            per_replica=[[] for _ in range(self.num_replicas)],
            pending=0,
        )
        records: List[ServingRecord] = []
        dropped: List[ServingRequest] = []
        batch_sizes: List[int] = []
        trace_times: List[float] = []
        trace_depths: List[int] = []
        scheduled_timers: set = set()

        # Heap entries: (time, kind, tiebreak).  Completions at a timestamp
        # are processed before arrivals/timers at the same timestamp.
        events: List[Tuple[float, int, int]] = [
            (item.request.arrival_s, _ARRIVAL, item.seq) for item in items
        ]
        heapq.heapify(events)

        while events:
            now = events[0][0]
            state.now = now
            # Drain every event at this instant before dispatching, so a
            # policy sees simultaneous arrivals together (e.g. EDF must pick
            # the tightest deadline of a burst, not whichever the heap pops
            # first).  Completions sort before arrivals/timers within the
            # instant, freeing replicas for the new work.
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    item = items[payload]
                    if (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        dropped.append(item.request)
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                # _COMPLETION frees its replica implicitly (busy_until <= now);
                # _TIMER just wakes the dispatcher for a held batch.
            # Sample the queue at its peak — after admissions, before
            # dispatch drains it — so max_queue_depth is consistent with the
            # drop count when a bounded queue fills.
            trace_times.append(now)
            trace_depths.append(lanes.pending)
            self._dispatch(
                now, state, lanes, items, busy_time, records, batch_sizes,
                events, scheduled_timers,
            )

        assert lanes.pending == 0, "simulation ended with requests still queued"
        return assemble_report(
            cluster=self,
            records=records,
            dropped=dropped,
            busy_time=busy_time,
            batch_sizes=batch_sizes,
            trace_times=np.array(trace_times, dtype=np.float64),
            trace_depths=np.array(trace_depths, dtype=np.int64),
            duration_s=duration_s,
        )

    # -- dispatch -------------------------------------------------------------
    def _dispatch(
        self,
        now: float,
        state: _SimState,
        lanes: "_Lanes",
        items: List[_QueueItem],
        busy_time: List[float],
        records: List[ServingRecord],
        batch_sizes: List[int],
        events: List[Tuple[float, int, int]],
        scheduled_timers: set,
    ) -> None:
        """Start work on every replica that is free at ``now``."""
        for replica in range(self.num_replicas):
            if state.busy_until[replica] > now or lanes.pending == 0:
                continue
            if self.max_batch_size == 1:
                # No batching: the head of the merged lanes is the batch,
                # unconditionally releasable.  O(log n).
                popped = lanes.pop_next(replica)
                if popped is None:
                    continue
                batch: Optional[List[_QueueItem]] = [items[popped[0][1]]]
                release_at: Optional[float] = None
            else:
                batch, release_at = self._select_batch(lanes, replica, items, now)
            if batch is None:
                if release_at is not None and release_at not in scheduled_timers:
                    scheduled_timers.add(release_at)
                    heapq.heappush(events, (release_at, _TIMER, replica))
                continue
            lanes.pending -= len(batch)
            for item in batch:
                if item.replica is not None:
                    state.queued_work[item.replica] -= item.service_s
            tenant = batch[0].request.tenant
            size = len(batch)
            # With dynamic batching enabled the dispatch size governs the
            # measurement; otherwise the workload's declared batch size does
            # (e.g. "my requests come pre-batched 8 deep"), which is exactly
            # what run_stream assumes — the single-replica equivalence holds
            # at any declared batch size.
            measure_at = (
                size
                if self.max_batch_size > 1
                else self.services[tenant].base_batch_size
            )
            measured = self.services[tenant].measurement(batch_size=measure_at)
            latencies = measured.latencies_s
            finish = now
            for item in batch:
                finish = finish + float(latencies[item.request.graph_index])
            service_total = finish - now
            state.busy_until[replica] = finish
            busy_time[replica] += service_total
            batch_sizes.append(size)
            heapq.heappush(events, (finish, _COMPLETION, replica))
            for item in batch:
                records.append(
                    ServingRecord(
                        request=item.request,
                        service_s=float(latencies[item.request.graph_index]),
                        energy_j=float(measured.energies_j[item.request.graph_index]),
                        start_s=now,
                        completion_s=finish,
                        replica=replica,
                        batch_size=size,
                    )
                )

    def _select_batch(
        self, lanes: "_Lanes", replica: int, items: List[_QueueItem], now: float
    ) -> Tuple[Optional[List[_QueueItem]], Optional[float]]:
        """The batch a free replica should start at ``now``, or when to retry.

        Scans the replica's merged lanes in policy order, popping entries
        into a buffer only as far as the decision requires: tenants are
        considered in first-appearance order, each owning the first
        ``max_batch_size`` of its requests, and the first tenant whose batch
        is *releasable* (full, or its oldest member has waited out the
        batching timeout) wins — so a held batch never blocks another
        tenant's ready work.  Everything scanned but not dispatched is
        pushed back.  Returns ``(batch, None)`` or
        ``(None, earliest release time)`` exactly like the reference
        implementation's full-sort walk.
        """
        max_batch = self.max_batch_size
        timeout = self.batch_timeout_s
        scanned: List[Tuple[Tuple, List]] = []   # (entry, source lane)
        order: List[str] = []                    # tenants, first-appearance order
        groups: Dict[str, List[_QueueItem]] = {}
        exhausted = False
        while True:
            winner: Optional[str] = None
            undecided = False
            for tenant in order:
                group = groups[tenant]
                if len(group) < max_batch and not exhausted:
                    # This tenant's batch may still grow; its releasability
                    # (and exact membership) is not yet decided, and no later
                    # tenant may be dispatched over it.
                    undecided = True
                    break
                oldest = min(item.request.arrival_s for item in group)
                if (
                    len(group) >= max_batch
                    or timeout == 0.0
                    or now >= oldest + timeout
                ):
                    winner = tenant
                    break
            if winner is not None:
                batch = groups[winner]
                chosen = {item.seq for item in batch}
                for entry, lane in scanned:
                    if entry[1] not in chosen:
                        heapq.heappush(lane, entry)
                return batch, None
            if exhausted and not undecided:
                if not order:
                    return None, None
                earliest: Optional[float] = None
                for tenant in order:
                    release = (
                        min(item.request.arrival_s for item in groups[tenant])
                        + timeout
                    )
                    if earliest is None or release < earliest:
                        earliest = release
                for entry, lane in scanned:
                    heapq.heappush(lane, entry)
                return None, earliest
            popped = lanes.pop_next(replica)
            if popped is None:
                exhausted = True
                continue
            entry, lane = popped
            scanned.append((entry, lane))
            item = items[entry[1]]
            tenant = item.request.tenant
            group = groups.get(tenant)
            if group is None:
                order.append(tenant)
                groups[tenant] = group = []
            if len(group) < max_batch:
                group.append(item)


@dataclass
class _Lanes:
    """Policy-ordered heaps of pending requests: one per replica + shared.

    A pinned request lives in its replica's lane; unpinned requests share
    one lane every replica merges with its own.  ``pending`` counts queued
    requests across all lanes (the admission-control bound and queue-depth
    trace read it).
    """

    shared: List[Tuple[Tuple, int]]
    per_replica: List[List[Tuple[Tuple, int]]]
    pending: int = 0

    def admit(self, item: _QueueItem, key: Tuple) -> None:
        lane = self.shared if item.replica is None else self.per_replica[item.replica]
        heapq.heappush(lane, (key, item.seq))
        self.pending += 1

    def pop_next(self, replica: int) -> Optional[Tuple[Tuple[Tuple, int], List]]:
        """Pop the policy-first entry among this replica's two lanes.

        Returns ``(entry, source_lane)`` so scanned-but-undispatched entries
        can be pushed back, or ``None`` when both lanes are empty.  Does not
        touch ``pending``: the caller owns the dispatch accounting.
        """
        own = self.per_replica[replica]
        shared = self.shared
        if own and shared:
            lane = own if own[0] < shared[0] else shared
        elif own:
            lane = own
        elif shared:
            lane = shared
        else:
            return None
        return heapq.heappop(lane), lane
