"""The multi-tenant serving cluster: replicas, dispatch policies, batching.

``Cluster`` multiplexes the merged request sequence of a
:class:`~repro.serve.LoadGenerator` across ``num_replicas`` identical
instances of one registered :class:`~repro.api.Backend`.  The simulation is
event-driven and fully deterministic: arrivals, batch-release timers and
replica completions are processed in time order, and every tie is broken by
a fixed (kind, sequence) rule.

Service times come from the backend's ``measure`` pass — the exact per-graph
latencies ``run``/``run_stream`` report — so a single replica with FIFO
dispatch and no batching reproduces
:func:`~repro.graph.simulate_stream_consumption` bit for bit (this is
asserted by the cross-backend serving contract tests).  With dynamic
batching, a dispatch of ``k`` same-tenant requests is re-measured at batch
size ``k``: platform backends amortise their framework overhead, FlowGNN
(a batch-1 streaming architecture) is indifferent.

Dispatch policies:

* ``round_robin``   — requests are pinned to replicas in rotation at
  arrival; each replica drains its own queue FIFO;
* ``least_loaded``  — requests are pinned at arrival to the replica with
  the least outstanding work (remaining service + queued service);
* ``edf``           — SLO-aware earliest-deadline-first: one shared queue,
  a free replica takes the request with the earliest absolute deadline
  (ties: higher priority, then arrival order).  Best-effort requests sort
  after every deadline-carrying one.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..api import Backend, InferenceRequest, Measurement, MeasurementCache, get_backend
from .arrivals import ServingRequest
from .report import (
    ServingRecord,
    ServingReport,
    assemble_report,
    assemble_sketch_report,
)
from .sketches import LatencySketch, StreamingHistogram
from .workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .arrivals import LoadGenerator

__all__ = [
    "DispatchPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "EarliestDeadlinePolicy",
    "POLICY_NAMES",
    "get_policy",
    "register_policy",
    "TenantService",
    "Cluster",
]


# ---------------------------------------------------------------------------
# Service model: what one replica spends on one request
# ---------------------------------------------------------------------------
class TenantService:
    """Cycle-accurate service-time oracle for one tenant on one backend.

    The base profile is measured once via ``backend.measure`` (falling back
    to ``run`` for third-party backends without it); batch-size variants are
    measured lazily and cached, so dynamic batching only pays for the batch
    sizes that actually occur.  Replicas are identical hardware and share
    one ``TenantService``.

    A :class:`~repro.api.MeasurementCache` can back the lazy measurements;
    the serving-scenario sweep engine (:mod:`repro.plan`) pre-measures every
    profile a sweep can need into one cache and ships it to the worker
    processes, so no scenario ever re-measures the backend.
    """

    def __init__(
        self,
        workload: Workload,
        backend: Backend,
        cache: Optional[MeasurementCache] = None,
    ) -> None:
        self.workload = workload
        self._backend = backend
        self._cache = cache
        self.resolved = workload.request.resolve()
        self._by_batch: Dict[int, Measurement] = {}
        self._base = self.measurement(workload.request.batch_size)

    def _request_at(self, batch_size: int) -> InferenceRequest:
        if batch_size == self.workload.request.batch_size:
            return self.workload.request
        return InferenceRequest(
            model=self.resolved.model,
            dataset=self.resolved.graphs,
            config=self.workload.request.config,
            batch_size=batch_size,
        )

    def _measure(self, request: InferenceRequest) -> Measurement:
        measure = getattr(self._backend, "measure", None)
        if measure is not None:
            return measure(request)
        report = self._backend.run(request)
        return Measurement(
            latencies_s=report.per_graph_latency_ms * 1e-3,
            energies_j=report.per_graph_energy_mj * 1e-3,
            one_time_overhead_s=report.one_time_overhead_ms * 1e-3,
            extras=dict(report.extras),
        )

    def _measure_profile(self, batch_size: int) -> Measurement:
        if self._cache is None:
            return self._measure(self._request_at(batch_size))
        return self._cache.get_or_measure(
            self._backend.name,
            self.workload.request,
            batch_size,
            lambda: self._measure(self._request_at(batch_size)),
        )

    @property
    def base(self) -> Measurement:
        return self._base

    @property
    def base_batch_size(self) -> int:
        """The workload's declared batch size (what ``run_stream`` assumes)."""
        return self.workload.request.batch_size

    @property
    def num_graphs(self) -> int:
        return len(self.resolved.graphs)

    def measurement(self, batch_size: int = 1) -> Measurement:
        """The backend's profile when requests are batched ``batch_size`` deep."""
        cached = self._by_batch.get(batch_size)
        if cached is None:
            cached = self._measure_profile(batch_size)
            self._by_batch[batch_size] = cached
        return cached

    def latencies_s(self, batch_size: int = 1) -> np.ndarray:
        """Per-graph service latencies at ``batch_size``."""
        return self.measurement(batch_size).latencies_s

    def energies_j(self, batch_size: int = 1) -> np.ndarray:
        """Per-graph energies at ``batch_size`` (batching amortises overhead)."""
        return self.measurement(batch_size).energies_j

    def service_s(self, graph_index: int, batch_size: int = 1) -> float:
        return float(self.latencies_s(batch_size)[graph_index])

    def mean_service_s(self) -> float:
        return float(self._base.latencies_s.mean()) if self._base.latencies_s.size else 0.0


# ---------------------------------------------------------------------------
# Dispatch policies
# ---------------------------------------------------------------------------
@dataclass
class _QueueItem:
    """A pending request plus the cluster's dispatch bookkeeping."""

    request: ServingRequest
    seq: int                        # global arrival order
    service_s: float                # batch-1 service time (backlog estimates)
    replica: Optional[int] = None   # pinned replica, None = any


class DispatchPolicy(ABC):
    """Where a request runs and in which order a free replica picks work."""

    name: str = "abstract"

    def reset(self, num_replicas: int) -> None:
        """Called at the start of every simulation."""

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        """Replica to pin ``item`` to at arrival; ``None`` leaves it shared."""
        return None

    @abstractmethod
    def order_key(self, item: _QueueItem) -> Tuple:
        """Sort key among a replica's eligible items (ties: arrival order).

        The key must be **stable while the request waits**: the dispatcher
        computes it once at admission and keeps the pending queue in
        key-ordered heaps, so a key that depends on simulation time (e.g.
        ageing priorities) would be frozen at its arrival value.  Every
        built-in policy (deadline, priority, sequence) satisfies this; a
        registered custom policy must too.
        """


class RoundRobinPolicy(DispatchPolicy):
    """Pin requests to replicas in rotation; per-replica FIFO."""

    name = "round_robin"

    def reset(self, num_replicas: int) -> None:
        self._counter = 0
        self._num_replicas = num_replicas

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        replica = self._counter % self._num_replicas
        self._counter += 1
        return replica

    def order_key(self, item: _QueueItem) -> Tuple:
        return ()


class LeastLoadedPolicy(DispatchPolicy):
    """Pin each arrival to the replica with the least outstanding work."""

    name = "least_loaded"

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        backlog = [
            max(state.busy_until[r] - state.now, 0.0) + state.queued_work[r]
            for r in range(len(state.busy_until))
        ]
        return int(np.argmin(backlog))

    def order_key(self, item: _QueueItem) -> Tuple:
        return ()


class EarliestDeadlinePolicy(DispatchPolicy):
    """Shared queue ordered by absolute deadline, then priority (SLO-aware)."""

    name = "edf"

    def order_key(self, item: _QueueItem) -> Tuple:
        return (item.request.absolute_deadline_s, -item.request.priority)


_POLICY_REGISTRY: Dict[str, Callable[[], DispatchPolicy]] = {}

#: Registered policy names, in registration order (stable for CLI choices).
POLICY_NAMES: List[str] = []


def register_policy(name: str, factory: Callable[[], DispatchPolicy]) -> None:
    """Register a dispatch-policy factory (mirrors ``register_backend``).

    The policy's ``order_key`` must be stable for a waiting request (see
    :meth:`DispatchPolicy.order_key`): keys are computed once at admission.
    """
    key = name.lower()
    if key not in _POLICY_REGISTRY:
        POLICY_NAMES.append(key)
    _POLICY_REGISTRY[key] = factory


def get_policy(name: str) -> DispatchPolicy:
    key = name.lower()
    if key not in _POLICY_REGISTRY:
        raise KeyError(f"unknown policy {name!r}; registered: {POLICY_NAMES}")
    return _POLICY_REGISTRY[key]()


register_policy("round_robin", RoundRobinPolicy)
register_policy("least_loaded", LeastLoadedPolicy)
register_policy("edf", EarliestDeadlinePolicy)


# ---------------------------------------------------------------------------
# Event-driven simulation
# ---------------------------------------------------------------------------
# Event kinds, in tie-break order at equal timestamps: completions free
# replicas before the arrivals/timers of the same instant are considered.
_COMPLETION, _ARRIVAL, _TIMER = 0, 1, 2


@dataclass
class _SimState:
    """Mutable simulation state shared with policy hooks."""

    busy_until: List[float]
    queued_work: List[float]
    now: float = 0.0


class _ExactSink:
    """Collects full per-request records (the historical, array-backed path)."""

    __slots__ = ("records", "batch_sizes")

    def __init__(self) -> None:
        self.records: List[ServingRecord] = []
        self.batch_sizes: List[int] = []

    def on_batch(self, size: int) -> None:
        self.batch_sizes.append(size)

    def on_record(
        self,
        item: _QueueItem,
        service_s: float,
        energy_j: float,
        start_s: float,
        completion_s: float,
        replica: int,
        batch_size: int,
    ) -> None:
        self.records.append(
            ServingRecord(
                request=item.request,
                service_s=service_s,
                energy_j=energy_j,
                start_s=start_s,
                completion_s=completion_s,
                replica=replica,
                batch_size=batch_size,
            )
        )


class _SketchSink:
    """Folds completed requests into online accumulators as they happen.

    The streaming counterpart of :class:`_ExactSink`: per-tenant
    :class:`~repro.serve.sketches.LatencySketch` objects, two cluster-level
    histograms, drop counters and the horizon maxima — O(tenants + replicas)
    memory however many requests stream through.  It also retires finished
    items from the streaming loop's ``items`` dict, keeping the live set
    bounded by the queue backlog.

    Per-tenant queue depth mirrors
    :func:`~repro.graph.queue_depths_at_arrivals` exactly: at each admission
    the depth is the number of earlier admissions minus the tenant's
    completions at or before the arrival, read off a min-heap of completion
    times.  By admission time every such completion has already been
    dispatched (a completion at ``t`` was dispatched no later than ``t``),
    so the heap always holds what the exact path's sorted array would.
    """

    __slots__ = (
        "items",
        "sketches",
        "batch_hist",
        "queue_hist",
        "dropped_by_tenant",
        "dropped_total",
        "max_completion_s",
        "max_dropped_arrival_s",
        "_qd_arrived",
        "_qd_popped",
        "_qd_heaps",
    )

    def __init__(self, cluster: "Cluster", items: Optional[Dict[int, _QueueItem]]) -> None:
        self.items = items
        self.sketches = {
            w.tenant: LatencySketch(deadline_s=w.deadline_s) for w in cluster.workloads
        }
        self.batch_hist = StreamingHistogram.integers(cluster.max_batch_size)
        self.queue_hist = StreamingHistogram.power_of_two()
        self.dropped_by_tenant = {w.tenant: 0 for w in cluster.workloads}
        self.dropped_total = 0
        self.max_completion_s = -math.inf
        self.max_dropped_arrival_s = -math.inf
        self._qd_arrived = {w.tenant: 0 for w in cluster.workloads}
        self._qd_popped = {w.tenant: 0 for w in cluster.workloads}
        self._qd_heaps: Dict[str, List[float]] = {w.tenant: [] for w in cluster.workloads}

    def on_batch(self, size: int) -> None:
        self.batch_hist.update(float(size))

    def on_record(
        self,
        item: _QueueItem,
        service_s: float,
        energy_j: float,
        start_s: float,
        completion_s: float,
        replica: int,
        batch_size: int,
    ) -> None:
        request = item.request
        self.sketches[request.tenant].observe(
            latency_s=completion_s - request.arrival_s,
            service_s=service_s,
            energy_j=energy_j,
            replica=replica,
            batch_size=batch_size,
        )
        heapq.heappush(self._qd_heaps[request.tenant], completion_s)
        if completion_s > self.max_completion_s:
            self.max_completion_s = completion_s
        if self.items is not None:
            del self.items[item.seq]

    def on_admit(self, request: ServingRequest) -> None:
        """Sample the tenant's queue depth at this (admitted) arrival."""
        tenant = request.tenant
        heap = self._qd_heaps[tenant]
        arrival = request.arrival_s
        popped = self._qd_popped[tenant]
        while heap and heap[0] <= arrival:
            heapq.heappop(heap)
            popped += 1
        self._qd_popped[tenant] = popped
        arrived = self._qd_arrived[tenant]
        self.sketches[tenant].queue.update(float(arrived - popped))
        self._qd_arrived[tenant] = arrived + 1

    def on_drop(self, request: ServingRequest) -> None:
        self.dropped_by_tenant[request.tenant] += 1
        self.dropped_total += 1
        if request.arrival_s > self.max_dropped_arrival_s:
            self.max_dropped_arrival_s = request.arrival_s

    def on_instant_sample(self, depth: int) -> None:
        self.queue_hist.update(float(depth))


@dataclass
class Cluster:
    """A pool of identical backend replicas serving many tenants.

    Parameters
    ----------
    workloads:
        The tenants (unique names).
    backend:
        Registered backend name; every replica is one instance of it.
    num_replicas:
        Pool size.
    policy:
        Dispatch policy name (``round_robin`` / ``least_loaded`` / ``edf``)
        or a :class:`DispatchPolicy` instance.
    max_batch_size / batch_timeout_s:
        Dynamic batching: a replica groups up to ``max_batch_size``
        same-tenant requests per dispatch, waiting at most
        ``batch_timeout_s`` after the oldest request's arrival for the
        batch to fill.  The defaults (1, 0) disable batching.
    queue_capacity:
        Bound on the number of queued requests; arrivals beyond it are
        dropped (admission control).  ``None`` means unbounded.
    measurement_cache:
        Optional :class:`~repro.api.MeasurementCache` backing the tenant
        services.  The serving-scenario sweep engine pre-measures every
        profile into one cache so no scenario re-measures the backend.
    """

    workloads: Sequence[Workload]
    backend: str = "flowgnn"
    num_replicas: int = 1
    policy: Union[str, DispatchPolicy] = "round_robin"
    max_batch_size: int = 1
    batch_timeout_s: float = 0.0
    queue_capacity: Optional[int] = None
    measurement_cache: Optional[MeasurementCache] = None
    services: Dict[str, TenantService] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.workloads = list(self.workloads)
        if not self.workloads:
            raise ValueError("Cluster needs at least one workload")
        names = [w.tenant for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique; got {names}")
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
        if isinstance(self.policy, str):
            self.policy = get_policy(self.policy)
        backend_instance = get_backend(self.backend)
        self.backend = backend_instance.name
        self.services = {
            w.tenant: TenantService(w, backend_instance, cache=self.measurement_cache)
            for w in self.workloads
        }

    def with_replicas(
        self, num_replicas: int, policy: Union[str, DispatchPolicy, None] = None
    ) -> "Cluster":
        """A resized/re-policied view sharing the measured tenant services.

        Capacity planning sweeps replica counts; re-measuring the backend per
        point would dominate the sweep, so the clone reuses this cluster's
        :class:`TenantService` objects (replicas are identical hardware).
        """
        return self.with_options(num_replicas=num_replicas, policy=policy)

    def with_options(
        self,
        num_replicas: Optional[int] = None,
        policy: Union[str, DispatchPolicy, None] = None,
        max_batch_size: Optional[int] = None,
        batch_timeout_s: Optional[float] = None,
        queue_capacity: Union[int, None, object] = ...,
    ) -> "Cluster":
        """A re-configured view of this cluster sharing its measured services.

        Any combination of pool size, dispatch policy, batching knobs and
        queue capacity can be overridden; everything else (tenants, backend,
        measured :class:`TenantService` profiles) is shared with ``self``.
        This is the primitive the serving-scenario sweep engine builds every
        grid point from without re-measuring.  ``queue_capacity`` uses ``...``
        as its "keep current" default because ``None`` means unbounded.
        """
        clone = Cluster.__new__(Cluster)
        clone.__dict__.update(self.__dict__)
        if num_replicas is not None:
            if num_replicas < 1:
                raise ValueError("num_replicas must be >= 1")
            clone.num_replicas = int(num_replicas)
        if policy is not None:
            clone.policy = get_policy(policy) if isinstance(policy, str) else policy
        if max_batch_size is not None:
            if max_batch_size < 1:
                raise ValueError("max_batch_size must be >= 1")
            clone.max_batch_size = int(max_batch_size)
        if batch_timeout_s is not None:
            if batch_timeout_s < 0:
                raise ValueError("batch_timeout_s must be >= 0")
            clone.batch_timeout_s = float(batch_timeout_s)
        if queue_capacity is not ...:
            if queue_capacity is not None and queue_capacity < 1:
                raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
            clone.queue_capacity = queue_capacity
        return clone

    def mean_service_s(self) -> float:
        """Mean batch-1 service time across tenants (capacity heuristics)."""
        means = [service.mean_service_s() for service in self.services.values()]
        return float(np.mean(means)) if means else 0.0

    # -- simulation -----------------------------------------------------------
    def serve(
        self,
        requests: Sequence[ServingRequest],
        duration_s: Optional[float] = None,
        mode: str = "exact",
    ) -> ServingReport:
        """Run the event-driven simulation over ``requests``.

        ``duration_s`` only stretches the utilisation horizon (e.g. to the
        load generator's configured duration); every submitted request is
        served to completion regardless.

        ``mode`` selects the aggregation path.  ``"exact"`` (the default and
        the oracle) stores per-request records and arrays; ``"sketch"``
        folds every completion into O(tenants + replicas) online
        accumulators — same event loop, same floats for counts, drops and
        utilisation, P²-estimated percentiles — and accepts ``requests`` as
        any iterable already sorted by ``(arrival_s, tenant_index, index)``
        (what :meth:`LoadGenerator.iter_requests` yields), never holding
        more than the queued backlog in memory.  For sketch mode straight
        from a generator — including the vectorised FIFO fast path — see
        :meth:`serve_stream`.

        The dispatcher keeps the pending requests in policy-ordered heaps —
        one *lane* per replica for pinned requests plus one shared lane —
        instead of re-sorting the whole queue at every event like the
        reference implementation
        (:func:`repro.serve.reference.reference_serve`).  Without dynamic
        batching a dispatch is a heap pop, O(log n); with batching the
        selection scans (and pushes back) only as far as the batching
        decision requires, which degrades toward the reference's full walk
        only when no batch is releasable.  The two are bit-identical; the
        contract test and ``benchmarks/test_serve_speedup.py`` hold them
        together.
        """
        if mode not in ("exact", "sketch"):
            raise ValueError(f"mode must be 'exact' or 'sketch', got {mode!r}")
        if mode == "sketch":
            return self._serve_sketch(iter(requests), duration_s)
        policy = self.policy
        policy.reset(self.num_replicas)
        for request in requests:
            if request.tenant not in self.services:
                raise ValueError(f"request for unknown tenant {request.tenant!r}")
        items = [
            _QueueItem(
                request=request,
                seq=seq,
                service_s=self.services[request.tenant].service_s(
                    request.graph_index,
                    batch_size=self.services[request.tenant].base_batch_size,
                ),
            )
            for seq, request in enumerate(
                sorted(requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index))
            )
        ]

        state = _SimState(
            busy_until=[0.0] * self.num_replicas,
            queued_work=[0.0] * self.num_replicas,
        )
        busy_time = [0.0] * self.num_replicas
        # Policy-ordered lanes.  An entry is (order_key + (seq,), seq); keys
        # are computed once at admission, which requires policy order keys to
        # be stable while a request waits (true of every built-in policy).
        lanes = _Lanes(
            shared=[],
            per_replica=[[] for _ in range(self.num_replicas)],
            pending=0,
        )
        sink = _ExactSink()
        dropped: List[ServingRequest] = []
        trace_times: List[float] = []
        trace_depths: List[int] = []
        scheduled_timers: set = set()

        # Heap entries: (time, kind, tiebreak).  Completions at a timestamp
        # are processed before arrivals/timers at the same timestamp.
        events: List[Tuple[float, int, int]] = [
            (item.request.arrival_s, _ARRIVAL, item.seq) for item in items
        ]
        heapq.heapify(events)

        while events:
            now = events[0][0]
            state.now = now
            # Drain every event at this instant before dispatching, so a
            # policy sees simultaneous arrivals together (e.g. EDF must pick
            # the tightest deadline of a burst, not whichever the heap pops
            # first).  Completions sort before arrivals/timers within the
            # instant, freeing replicas for the new work.
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    item = items[payload]
                    if (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        dropped.append(item.request)
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                # _COMPLETION frees its replica implicitly (busy_until <= now);
                # _TIMER just wakes the dispatcher for a held batch.
            # Sample the queue at its peak — after admissions, before
            # dispatch drains it — so max_queue_depth is consistent with the
            # drop count when a bounded queue fills.
            trace_times.append(now)
            trace_depths.append(lanes.pending)
            self._dispatch(
                now, state, lanes, items, busy_time, sink, events, scheduled_timers
            )

        assert lanes.pending == 0, "simulation ended with requests still queued"
        return assemble_report(
            cluster=self,
            records=sink.records,
            dropped=dropped,
            busy_time=busy_time,
            batch_sizes=sink.batch_sizes,
            trace_times=np.array(trace_times, dtype=np.float64),
            trace_depths=np.array(trace_depths, dtype=np.int64),
            duration_s=duration_s,
        )

    def serve_stream(
        self,
        generator: "LoadGenerator",
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        mode: str = "sketch",
    ) -> ServingReport:
        """Serve a :class:`LoadGenerator`'s stream without materialising it.

        In sketch mode the request sequence is consumed lazily
        (:meth:`LoadGenerator.iter_requests`), so a million-request trace
        costs O(tenants x chunk + backlog) memory end to end.  When the
        configuration permits — ``round_robin`` dispatch, no batching, an
        unbounded queue — the simulation runs the vectorised FIFO fast path
        over :meth:`LoadGenerator.iter_request_blocks` instead of the scalar
        event loop; both produce the same report (counts, drops and
        utilisation bit-identical to the exact oracle, percentiles within
        the sketch tolerance).  ``mode="exact"`` materialises the sequence
        and runs the array-backed oracle path.
        """
        if mode not in ("exact", "sketch"):
            raise ValueError(f"mode must be 'exact' or 'sketch', got {mode!r}")
        if mode == "exact":
            return self.serve(
                generator.generate(duration_s=duration_s, num_requests=num_requests),
                duration_s=duration_s,
            )
        for workload in generator.workloads:
            if workload.tenant not in self.services:
                raise ValueError(
                    f"load generator tenant {workload.tenant!r} unknown to cluster"
                )
        if self._fast_path_eligible():
            return self._serve_stream_fast(generator, duration_s, num_requests)
        return self._serve_sketch(
            generator.iter_requests(duration_s=duration_s, num_requests=num_requests),
            duration_s,
        )

    def _fast_path_eligible(self) -> bool:
        """FIFO-lane vectorisation is valid only when dispatch is pure
        round-robin pinning (not a subclass overriding ``assign``), batches
        are single requests (no timers, measurement at the declared batch
        size) and admission never drops (unbounded queue)."""
        return (
            type(self.policy) is RoundRobinPolicy
            and self.max_batch_size == 1
            and self.queue_capacity is None
        )

    def _serve_sketch(
        self, request_iter: Iterable[ServingRequest], duration_s: Optional[float]
    ) -> ServingReport:
        """The event loop with lazy arrivals and online aggregation.

        Identical dispatch semantics to the exact path — same heap, same
        tie-breaking, same float operations on start/finish/busy times — but
        arrivals are pulled from ``request_iter`` one ahead of the event
        heap (the stream is sorted, so one lookahead suffices) and every
        completion folds into a :class:`_SketchSink` instead of a record
        list.  Peak memory is the queued backlog, not the request count.
        """
        policy = self.policy
        policy.reset(self.num_replicas)
        request_iter = iter(request_iter)
        state = _SimState(
            busy_until=[0.0] * self.num_replicas,
            queued_work=[0.0] * self.num_replicas,
        )
        busy_time = [0.0] * self.num_replicas
        lanes = _Lanes(
            shared=[],
            per_replica=[[] for _ in range(self.num_replicas)],
            pending=0,
        )
        items: Dict[int, _QueueItem] = {}
        sink = _SketchSink(self, items)
        scheduled_timers: set = set()
        events: List[Tuple[float, int, int]] = []
        next_seq = 0
        prev_key: Optional[Tuple[float, int, int]] = None

        def pull() -> None:
            """Admit the next request of the stream into the event heap."""
            nonlocal next_seq, prev_key
            request = next(request_iter, None)
            if request is None:
                return
            if request.tenant not in self.services:
                raise ValueError(f"request for unknown tenant {request.tenant!r}")
            key = (request.arrival_s, request.tenant_index, request.index)
            if prev_key is not None and key < prev_key:
                raise ValueError(
                    "sketch-mode serve requires requests sorted by "
                    "(arrival_s, tenant_index, index); use "
                    "LoadGenerator.iter_requests or sort the sequence"
                )
            prev_key = key
            service = self.services[request.tenant]
            items[next_seq] = _QueueItem(
                request=request,
                seq=next_seq,
                service_s=service.service_s(
                    request.graph_index, batch_size=service.base_batch_size
                ),
            )
            heapq.heappush(events, (request.arrival_s, _ARRIVAL, next_seq))
            next_seq += 1

        pull()
        while events:
            now = events[0][0]
            state.now = now
            saw_arrival = False
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    saw_arrival = True
                    item = items[payload]
                    # Keep exactly one future arrival in the heap: if the
                    # next request shares this timestamp it joins this
                    # instant's drain, preserving the exact loop's
                    # simultaneous-arrival semantics.
                    pull()
                    if (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        sink.on_drop(item.request)
                        del items[item.seq]
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                        sink.on_admit(item.request)
            # Exact mode samples the queue at every instant; the maximum is
            # always attained at an arrival instant (depth only grows at
            # admissions), so sampling those keeps max_queue_depth identical
            # while the histogram documents arrival-instant depths only.
            if saw_arrival:
                sink.on_instant_sample(lanes.pending)
            self._dispatch(
                now, state, lanes, items, busy_time, sink, events, scheduled_timers
            )

        assert lanes.pending == 0, "simulation ended with requests still queued"
        assert not items, "streaming loop leaked queue items"
        return assemble_sketch_report(
            cluster=self,
            sketches=sink.sketches,
            dropped_by_tenant=sink.dropped_by_tenant,
            busy_time=busy_time,
            batch_size_hist=sink.batch_hist,
            queue_depth_hist=sink.queue_hist,
            max_completion_s=sink.max_completion_s,
            max_dropped_arrival_s=sink.max_dropped_arrival_s,
            duration_s=duration_s,
        )

    def _serve_stream_fast(
        self,
        generator: "LoadGenerator",
        duration_s: Optional[float],
        num_requests: Optional[int],
    ) -> ServingReport:
        """Vectorised FIFO fast path over merged request blocks.

        Under round-robin pinning with no batching and no admission control,
        the event loop collapses to per-replica FIFO recurrences: request
        ``k`` (global arrival order) runs on replica ``k % R`` and starts at
        ``max(arrival, previous finish)``.  Everything else — service/energy
        lookups, end-to-end latencies, deadline misses, queue depths — is
        numpy over :meth:`LoadGenerator.iter_request_blocks`.  The start/
        finish recurrence stays a scalar loop on purpose: it replays the
        exact event loop's float operations (branch-max, one add per
        request, one subtract into busy time), keeping utilisation
        bit-identical to the oracle.

        Queue depths replicate the exact trace's definition.  Cluster level:
        depth after the admissions of arrival instant ``t`` is
        ``#{arrivals <= t} - #{starts < t}``, evaluated at the last arrival
        of each distinct timestamp.  Per tenant:
        ``i - #{tenant completions <= arrival_i}`` exactly as
        :func:`~repro.graph.queue_depths_at_arrivals`.  Completions and
        starts still pending against future arrivals are carried between
        blocks, so memory is O(tenants x chunk + backlog).
        """
        num_replicas = self.num_replicas
        workloads = list(generator.workloads)
        num_tenants = len(workloads)

        # Padded per-tenant service/energy lookup tables at the declared
        # batch size (what a batch-1 dispatch measures at).
        services = [self.services[w.tenant] for w in workloads]
        pool_sizes = [service.latencies_s(service.base_batch_size).size for service in services]
        width = max(pool_sizes) if pool_sizes else 1
        lat_lut = np.zeros((num_tenants, width), dtype=np.float64)
        energy_lut = np.zeros((num_tenants, width), dtype=np.float64)
        deadlines = np.full(num_tenants, np.inf, dtype=np.float64)
        for t, (workload, service) in enumerate(zip(workloads, services)):
            base = service.base_batch_size
            lat_lut[t, : pool_sizes[t]] = service.latencies_s(base)
            energy_lut[t, : pool_sizes[t]] = service.energies_j(base)
            if workload.deadline_s is not None:
                deadlines[t] = workload.deadline_s

        sink = _SketchSink(self, items=None)
        sketches = [sink.sketches[w.tenant] for w in workloads]
        busy_time = [0.0] * num_replicas
        prev_finish = [0.0] * num_replicas
        replica_offset = 0          # global round-robin counter (mod R)
        total_arrived = 0           # global arrivals so far (cluster depth)
        start_carry = np.zeros(0, dtype=np.float64)   # starts > last arrival
        starts_counted = 0          # starts already < past arrivals
        qd_carry: List[np.ndarray] = [np.zeros(0, dtype=np.float64) for _ in range(num_tenants)]
        qd_counted = [0] * num_tenants
        qd_arrived = [0] * num_tenants
        served_any = False

        for block in generator.iter_request_blocks(
            duration_s=duration_s, num_requests=num_requests
        ):
            n = len(block)
            if not n:
                continue
            served_any = True
            arrival = block.arrival_s
            tenant_idx = block.tenant_index
            service_s = lat_lut[tenant_idx, block.graph_index]
            energy_j = energy_lut[tenant_idx, block.graph_index]
            replica = (replica_offset + np.arange(n, dtype=np.int64)) % num_replicas
            replica_offset = (replica_offset + n) % num_replicas

            # Per-replica FIFO recurrence — scalar on purpose (see above).
            starts = np.empty(n, dtype=np.float64)
            finishes = np.empty(n, dtype=np.float64)
            for r in range(num_replicas):
                rows = np.nonzero(replica == r)[0]
                if not rows.size:
                    continue
                prev = prev_finish[r]
                busy = busy_time[r]
                start_list: List[float] = []
                finish_list: List[float] = []
                for a, s in zip(arrival[rows].tolist(), service_s[rows].tolist()):
                    start = a if a >= prev else prev
                    prev = start + s
                    busy += prev - start
                    start_list.append(start)
                    finish_list.append(prev)
                starts[rows] = start_list
                finishes[rows] = finish_list
                prev_finish[r] = prev
                busy_time[r] = busy

            latency = finishes - arrival

            # Cluster queue depth at each distinct arrival instant.
            start_pool = np.sort(np.concatenate([start_carry, starts]))
            before = starts_counted + np.searchsorted(start_pool, arrival, side="left")
            depths = (total_arrived + np.arange(1, n + 1)) - before
            last_of_instant = np.empty(n, dtype=bool)
            last_of_instant[-1] = True
            np.not_equal(arrival[1:], arrival[:-1], out=last_of_instant[:-1])
            sink.queue_hist.update_many(depths[last_of_instant].astype(np.float64))
            consumed = int(np.searchsorted(start_pool, arrival[-1], side="left"))
            starts_counted += consumed
            start_carry = start_pool[consumed:]
            total_arrived += n
            sink.batch_hist.update_many(np.ones(n))

            # Per-tenant aggregation.
            for t in np.unique(tenant_idx):
                rows = np.nonzero(tenant_idx == t)[0]
                k = rows.size
                arr_t = arrival[rows]
                fin_t = finishes[rows]
                sketches[t].observe_block(
                    latencies_s=latency[rows],
                    services_s=service_s[rows],
                    energies_j=energy_j[rows],
                    replicas=replica[rows],
                )
                # depth_i = i - #{completions <= arrival_i}; completions of
                # this block's own (and later) requests finish strictly
                # after their arrivals, so pooling them in is harmless.
                pool = np.sort(np.concatenate([qd_carry[t], fin_t]))
                done = qd_counted[t] + np.searchsorted(pool, arr_t, side="right")
                depth_t = (qd_arrived[t] + np.arange(k)) - done
                sketches[t].queue.update_many(depth_t.astype(np.float64))
                consumed_t = int(np.searchsorted(pool, arr_t[-1], side="right"))
                qd_counted[t] += consumed_t
                qd_carry[t] = pool[consumed_t:]
                qd_arrived[t] += k

        if served_any:
            sink.max_completion_s = max(prev_finish)
        return assemble_sketch_report(
            cluster=self,
            sketches=sink.sketches,
            dropped_by_tenant=sink.dropped_by_tenant,
            busy_time=busy_time,
            batch_size_hist=sink.batch_hist,
            queue_depth_hist=sink.queue_hist,
            max_completion_s=sink.max_completion_s,
            max_dropped_arrival_s=sink.max_dropped_arrival_s,
            duration_s=duration_s,
        )

    # -- dispatch -------------------------------------------------------------
    def _dispatch(
        self,
        now: float,
        state: _SimState,
        lanes: "_Lanes",
        items: Union[List[_QueueItem], Dict[int, _QueueItem]],
        busy_time: List[float],
        sink: Union[_ExactSink, _SketchSink],
        events: List[Tuple[float, int, int]],
        scheduled_timers: set,
    ) -> None:
        """Start work on every replica that is free at ``now``."""
        for replica in range(self.num_replicas):
            if state.busy_until[replica] > now or lanes.pending == 0:
                continue
            if self.max_batch_size == 1:
                # No batching: the head of the merged lanes is the batch,
                # unconditionally releasable.  O(log n).
                popped = lanes.pop_next(replica)
                if popped is None:
                    continue
                batch: Optional[List[_QueueItem]] = [items[popped[0][1]]]
                release_at: Optional[float] = None
            else:
                batch, release_at = self._select_batch(lanes, replica, items, now)
            if batch is None:
                if release_at is not None and release_at not in scheduled_timers:
                    scheduled_timers.add(release_at)
                    heapq.heappush(events, (release_at, _TIMER, replica))
                continue
            lanes.pending -= len(batch)
            for item in batch:
                if item.replica is not None:
                    state.queued_work[item.replica] -= item.service_s
            tenant = batch[0].request.tenant
            size = len(batch)
            # With dynamic batching enabled the dispatch size governs the
            # measurement; otherwise the workload's declared batch size does
            # (e.g. "my requests come pre-batched 8 deep"), which is exactly
            # what run_stream assumes — the single-replica equivalence holds
            # at any declared batch size.
            measure_at = (
                size
                if self.max_batch_size > 1
                else self.services[tenant].base_batch_size
            )
            measured = self.services[tenant].measurement(batch_size=measure_at)
            latencies = measured.latencies_s
            finish = now
            for item in batch:
                finish = finish + float(latencies[item.request.graph_index])
            service_total = finish - now
            state.busy_until[replica] = finish
            busy_time[replica] += service_total
            sink.on_batch(size)
            heapq.heappush(events, (finish, _COMPLETION, replica))
            for item in batch:
                sink.on_record(
                    item,
                    service_s=float(latencies[item.request.graph_index]),
                    energy_j=float(measured.energies_j[item.request.graph_index]),
                    start_s=now,
                    completion_s=finish,
                    replica=replica,
                    batch_size=size,
                )

    def _select_batch(
        self, lanes: "_Lanes", replica: int, items: List[_QueueItem], now: float
    ) -> Tuple[Optional[List[_QueueItem]], Optional[float]]:
        """The batch a free replica should start at ``now``, or when to retry.

        Scans the replica's merged lanes in policy order, popping entries
        into a buffer only as far as the decision requires: tenants are
        considered in first-appearance order, each owning the first
        ``max_batch_size`` of its requests, and the first tenant whose batch
        is *releasable* (full, or its oldest member has waited out the
        batching timeout) wins — so a held batch never blocks another
        tenant's ready work.  Everything scanned but not dispatched is
        pushed back.  Returns ``(batch, None)`` or
        ``(None, earliest release time)`` exactly like the reference
        implementation's full-sort walk.
        """
        max_batch = self.max_batch_size
        timeout = self.batch_timeout_s
        scanned: List[Tuple[Tuple, List]] = []   # (entry, source lane)
        order: List[str] = []                    # tenants, first-appearance order
        groups: Dict[str, List[_QueueItem]] = {}
        exhausted = False
        while True:
            winner: Optional[str] = None
            undecided = False
            for tenant in order:
                group = groups[tenant]
                if len(group) < max_batch and not exhausted:
                    # This tenant's batch may still grow; its releasability
                    # (and exact membership) is not yet decided, and no later
                    # tenant may be dispatched over it.
                    undecided = True
                    break
                oldest = min(item.request.arrival_s for item in group)
                if (
                    len(group) >= max_batch
                    or timeout == 0.0
                    or now >= oldest + timeout
                ):
                    winner = tenant
                    break
            if winner is not None:
                batch = groups[winner]
                chosen = {item.seq for item in batch}
                for entry, lane in scanned:
                    if entry[1] not in chosen:
                        heapq.heappush(lane, entry)
                return batch, None
            if exhausted and not undecided:
                if not order:
                    return None, None
                earliest: Optional[float] = None
                for tenant in order:
                    release = (
                        min(item.request.arrival_s for item in groups[tenant])
                        + timeout
                    )
                    if earliest is None or release < earliest:
                        earliest = release
                for entry, lane in scanned:
                    heapq.heappush(lane, entry)
                return None, earliest
            popped = lanes.pop_next(replica)
            if popped is None:
                exhausted = True
                continue
            entry, lane = popped
            scanned.append((entry, lane))
            item = items[entry[1]]
            tenant = item.request.tenant
            group = groups.get(tenant)
            if group is None:
                order.append(tenant)
                groups[tenant] = group = []
            if len(group) < max_batch:
                group.append(item)


@dataclass
class _Lanes:
    """Policy-ordered heaps of pending requests: one per replica + shared.

    A pinned request lives in its replica's lane; unpinned requests share
    one lane every replica merges with its own.  ``pending`` counts queued
    requests across all lanes (the admission-control bound and queue-depth
    trace read it).
    """

    shared: List[Tuple[Tuple, int]]
    per_replica: List[List[Tuple[Tuple, int]]]
    pending: int = 0

    def admit(self, item: _QueueItem, key: Tuple) -> None:
        lane = self.shared if item.replica is None else self.per_replica[item.replica]
        heapq.heappush(lane, (key, item.seq))
        self.pending += 1

    def pop_next(self, replica: int) -> Optional[Tuple[Tuple[Tuple, int], List]]:
        """Pop the policy-first entry among this replica's two lanes.

        Returns ``(entry, source_lane)`` so scanned-but-undispatched entries
        can be pushed back, or ``None`` when both lanes are empty.  Does not
        touch ``pending``: the caller owns the dispatch accounting.
        """
        own = self.per_replica[replica]
        shared = self.shared
        if own and shared:
            lane = own if own[0] < shared[0] else shared
        elif own:
            lane = own
        elif shared:
            lane = shared
        else:
            return None
        return heapq.heappop(lane), lane
