"""The multi-tenant serving cluster: replicas, dispatch policies, batching.

``Cluster`` multiplexes the merged request sequence of a
:class:`~repro.serve.LoadGenerator` across ``num_replicas`` identical
instances of one registered :class:`~repro.api.Backend`.  The simulation is
event-driven and fully deterministic: arrivals, batch-release timers and
replica completions are processed in time order, and every tie is broken by
a fixed (kind, sequence) rule.

Service times come from the backend's ``measure`` pass — the exact per-graph
latencies ``run``/``run_stream`` report — so a single replica with FIFO
dispatch and no batching reproduces
:func:`~repro.graph.simulate_stream_consumption` bit for bit (this is
asserted by the cross-backend serving contract tests).  With dynamic
batching, a dispatch of ``k`` same-tenant requests is re-measured at batch
size ``k``: platform backends amortise their framework overhead, FlowGNN
(a batch-1 streaming architecture) is indifferent.

Dispatch policies:

* ``round_robin``   — requests are pinned to replicas in rotation at
  arrival; each replica drains its own queue FIFO;
* ``least_loaded``  — requests are pinned at arrival to the replica with
  the least outstanding work (remaining service + queued service);
* ``edf``           — SLO-aware earliest-deadline-first: one shared queue,
  a free replica takes the request with the earliest absolute deadline
  (ties: higher priority, then arrival order).  Best-effort requests sort
  after every deadline-carrying one.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from bisect import insort
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..api import Backend, InferenceRequest, Measurement, MeasurementCache, get_backend
from .arrivals import ServingRequest
from .autoscale import (
    AdmissionControl,
    Autoscaler,
    AutoscalerMetrics,
    CarbonWaitingAdmission,
    parse_admission,
    parse_autoscaler,
)
from .carbon import CarbonIntensity
from .faults import FaultSchedule
from .power import PowerModel
from .report import (
    ServingRecord,
    ServingReport,
    assemble_report,
    assemble_sketch_report,
)
from .sketches import LatencySketch, StreamingHistogram
from .workload import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .arrivals import LoadGenerator

__all__ = [
    "DispatchPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "EarliestDeadlinePolicy",
    "POLICY_NAMES",
    "get_policy",
    "register_policy",
    "TenantService",
    "Cluster",
]


# ---------------------------------------------------------------------------
# Service model: what one replica spends on one request
# ---------------------------------------------------------------------------
class TenantService:
    """Cycle-accurate service-time oracle for one tenant on one backend.

    The base profile is measured once via ``backend.measure`` (falling back
    to ``run`` for third-party backends without it); batch-size variants are
    measured lazily and cached, so dynamic batching only pays for the batch
    sizes that actually occur.  Replicas are identical hardware and share
    one ``TenantService``.

    A :class:`~repro.api.MeasurementCache` can back the lazy measurements;
    the serving-scenario sweep engine (:mod:`repro.plan`) pre-measures every
    profile a sweep can need into one cache and ships it to the worker
    processes, so no scenario ever re-measures the backend.
    """

    def __init__(
        self,
        workload: Workload,
        backend: Backend,
        cache: Optional[MeasurementCache] = None,
    ) -> None:
        self.workload = workload
        self._backend = backend
        self._cache = cache
        self.resolved = workload.request.resolve()
        self._by_batch: Dict[int, Measurement] = {}
        self._base = self.measurement(workload.request.batch_size)

    def _request_at(self, batch_size: int) -> InferenceRequest:
        if batch_size == self.workload.request.batch_size:
            return self.workload.request
        return InferenceRequest(
            model=self.resolved.model,
            dataset=self.resolved.graphs,
            config=self.workload.request.config,
            batch_size=batch_size,
        )

    def _measure(self, request: InferenceRequest) -> Measurement:
        measure = getattr(self._backend, "measure", None)
        if measure is not None:
            return measure(request)
        report = self._backend.run(request)
        return Measurement(
            latencies_s=report.per_graph_latency_ms * 1e-3,
            energies_j=report.per_graph_energy_mj * 1e-3,
            one_time_overhead_s=report.one_time_overhead_ms * 1e-3,
            extras=dict(report.extras),
        )

    def _measure_profile(self, batch_size: int) -> Measurement:
        if self._cache is None:
            return self._measure(self._request_at(batch_size))
        return self._cache.get_or_measure(
            self._backend.name,
            self.workload.request,
            batch_size,
            lambda: self._measure(self._request_at(batch_size)),
        )

    @property
    def base(self) -> Measurement:
        return self._base

    @property
    def base_batch_size(self) -> int:
        """The workload's declared batch size (what ``run_stream`` assumes)."""
        return self.workload.request.batch_size

    @property
    def num_graphs(self) -> int:
        return len(self.resolved.graphs)

    def measurement(self, batch_size: int = 1) -> Measurement:
        """The backend's profile when requests are batched ``batch_size`` deep."""
        cached = self._by_batch.get(batch_size)
        if cached is None:
            cached = self._measure_profile(batch_size)
            self._by_batch[batch_size] = cached
        return cached

    def latencies_s(self, batch_size: int = 1) -> np.ndarray:
        """Per-graph service latencies at ``batch_size``."""
        return self.measurement(batch_size).latencies_s

    def energies_j(self, batch_size: int = 1) -> np.ndarray:
        """Per-graph energies at ``batch_size`` (batching amortises overhead)."""
        return self.measurement(batch_size).energies_j

    def service_s(self, graph_index: int, batch_size: int = 1) -> float:
        return float(self.latencies_s(batch_size)[graph_index])

    def mean_service_s(self) -> float:
        return float(self._base.latencies_s.mean()) if self._base.latencies_s.size else 0.0


# ---------------------------------------------------------------------------
# Dispatch policies
# ---------------------------------------------------------------------------
@dataclass
class _QueueItem:
    """A pending request plus the cluster's dispatch bookkeeping."""

    request: ServingRequest
    seq: int                        # global arrival order
    service_s: float                # batch-1 service time (backlog estimates)
    replica: Optional[int] = None   # pinned replica, None = any


class DispatchPolicy(ABC):
    """Where a request runs and in which order a free replica picks work."""

    name: str = "abstract"

    def reset(self, num_replicas: int) -> None:
        """Called at the start of every simulation."""

    def rebind(self, num_replicas: int) -> None:
        """Called when a dynamic simulation grows the pool to ``num_replicas``.

        ``num_replicas`` counts every replica ever created (including dead
        and draining ones); the dispatchable subset is ``state.live``.  The
        default is a no-op — the built-in policies read ``state.live``
        directly, so they need no rebinding state.
        """

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        """Replica to pin ``item`` to at arrival; ``None`` leaves it shared.

        Only replicas in ``state.live`` may be returned: the dynamic loop
        re-routes a dead/draining replica's queue through this hook, and an
        assignment outside ``live`` would strand the request.
        """
        return None

    @abstractmethod
    def order_key(self, item: _QueueItem) -> Tuple:
        """Sort key among a replica's eligible items (ties: arrival order).

        The key must be **stable while the request waits**: the dispatcher
        computes it once at admission and keeps the pending queue in
        key-ordered heaps, so a key that depends on simulation time (e.g.
        ageing priorities) would be frozen at its arrival value.  Every
        built-in policy (deadline, priority, sequence) satisfies this; a
        registered custom policy must too.
        """


class RoundRobinPolicy(DispatchPolicy):
    """Pin requests to replicas in rotation; per-replica FIFO."""

    name = "round_robin"

    def reset(self, num_replicas: int) -> None:
        self._counter = 0
        self._num_replicas = num_replicas

    def rebind(self, num_replicas: int) -> None:
        self._num_replicas = num_replicas

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        live = state.live
        if not live:
            return None
        replica = live[self._counter % len(live)]
        self._counter += 1
        return replica

    def order_key(self, item: _QueueItem) -> Tuple:
        return ()


class LeastLoadedPolicy(DispatchPolicy):
    """Pin each arrival to the replica with the least outstanding work."""

    name = "least_loaded"

    def assign(self, item: _QueueItem, state: "_SimState") -> Optional[int]:
        live = state.live
        if not live:
            return None
        backlog = [
            max(state.busy_until[r] - state.now, 0.0) + state.queued_work[r]
            for r in live
        ]
        return int(live[int(np.argmin(backlog))])

    def order_key(self, item: _QueueItem) -> Tuple:
        return ()


class EarliestDeadlinePolicy(DispatchPolicy):
    """Shared queue ordered by absolute deadline, then priority (SLO-aware)."""

    name = "edf"

    def order_key(self, item: _QueueItem) -> Tuple:
        return (item.request.absolute_deadline_s, -item.request.priority)


_POLICY_REGISTRY: Dict[str, Callable[[], DispatchPolicy]] = {}

#: Registered policy names, in registration order (stable for CLI choices).
POLICY_NAMES: List[str] = []


def register_policy(name: str, factory: Callable[[], DispatchPolicy]) -> None:
    """Register a dispatch-policy factory (mirrors ``register_backend``).

    The policy's ``order_key`` must be stable for a waiting request (see
    :meth:`DispatchPolicy.order_key`): keys are computed once at admission.
    """
    key = name.lower()
    if key not in _POLICY_REGISTRY:
        POLICY_NAMES.append(key)
    _POLICY_REGISTRY[key] = factory


def get_policy(name: str) -> DispatchPolicy:
    key = name.lower()
    if key not in _POLICY_REGISTRY:
        raise KeyError(f"unknown policy {name!r}; registered: {POLICY_NAMES}")
    return _POLICY_REGISTRY[key]()


register_policy("round_robin", RoundRobinPolicy)
register_policy("least_loaded", LeastLoadedPolicy)
register_policy("edf", EarliestDeadlinePolicy)


# ---------------------------------------------------------------------------
# Event-driven simulation
# ---------------------------------------------------------------------------
# Event kinds, in tie-break order at equal timestamps: completions free
# replicas first, then the control plane (faults, recoveries, scale events)
# reshapes the pool, and only then are the instant's arrivals/timers
# considered — so a request arriving the same instant a replica dies is
# never assigned to it.  The static paths only ever use _COMPLETION,
# _ARRIVAL and _TIMER, whose relative order is unchanged.
_COMPLETION, _FAIL, _RECOVER, _SCALE, _ARRIVAL, _TIMER = 0, 1, 2, 3, 4, 5

# Replica lifecycle states (dynamic runs; static pools are all-_ACTIVE).
# provisioning -> active -> draining -> dead, with fail/recover shortcuts
# and "degraded" = active with a service-time factor != 1.
_PROVISIONING, _ACTIVE, _DRAINING, _DEAD = 0, 1, 2, 3


def _new_event_counts() -> Dict[str, int]:
    """Zeroed lifecycle counters, in the report's canonical key order."""
    return {
        "scale_up_events": 0,
        "scale_down_events": 0,
        "replicas_added": 0,
        "replicas_removed": 0,
        "failures": 0,
        "recoveries": 0,
        "degradations": 0,
        "restorations": 0,
    }


@dataclass
class _SimState:
    """Mutable simulation state shared with policy hooks.

    ``live`` lists the dispatchable replica ids in ascending order.  Static
    simulations leave it at the default (every replica); the dynamic loop
    maintains it as replicas provision, drain, die and recover, and the
    built-in policies assign over it — so a policy written against ``live``
    behaves identically on a static pool.
    """

    busy_until: List[float]
    queued_work: List[float]
    now: float = 0.0
    live: Optional[List[int]] = None

    def __post_init__(self) -> None:
        if self.live is None:
            self.live = list(range(len(self.busy_until)))


class _ExactSink:
    """Collects full per-request records (the historical, array-backed path)."""

    __slots__ = ("records", "batch_sizes", "dropped", "shed")

    def __init__(self) -> None:
        self.records: List[ServingRecord] = []
        self.batch_sizes: List[int] = []
        self.dropped: List[ServingRequest] = []
        self.shed: List[ServingRequest] = []

    def on_batch(self, size: int) -> None:
        self.batch_sizes.append(size)

    def on_admit(self, request: ServingRequest) -> None:
        pass

    def on_drop(self, request: ServingRequest) -> None:
        self.dropped.append(request)

    def on_shed(self, request: ServingRequest) -> None:
        self.shed.append(request)

    def on_record(
        self,
        item: _QueueItem,
        service_s: float,
        energy_j: float,
        start_s: float,
        completion_s: float,
        replica: int,
        batch_size: int,
    ) -> None:
        self.records.append(
            ServingRecord(
                request=item.request,
                service_s=service_s,
                energy_j=energy_j,
                start_s=start_s,
                completion_s=completion_s,
                replica=replica,
                batch_size=batch_size,
            )
        )


class _SketchSink:
    """Folds completed requests into online accumulators as they happen.

    The streaming counterpart of :class:`_ExactSink`: per-tenant
    :class:`~repro.serve.sketches.LatencySketch` objects, two cluster-level
    histograms, drop counters and the horizon maxima — O(tenants + replicas)
    memory however many requests stream through.  It also retires finished
    items from the streaming loop's ``items`` dict, keeping the live set
    bounded by the queue backlog.

    Per-tenant queue depth mirrors
    :func:`~repro.graph.queue_depths_at_arrivals` exactly: at each admission
    the depth is the number of earlier admissions minus the tenant's
    completions at or before the arrival, read off a min-heap of completion
    times.  By admission time every such completion has already been
    dispatched (a completion at ``t`` was dispatched no later than ``t``),
    so the heap always holds what the exact path's sorted array would.
    """

    __slots__ = (
        "items",
        "sketches",
        "batch_hist",
        "queue_hist",
        "dropped_by_tenant",
        "dropped_total",
        "shed_by_tenant",
        "shed_total",
        "max_completion_s",
        "max_dropped_arrival_s",
        "max_shed_arrival_s",
        "_qd_arrived",
        "_qd_popped",
        "_qd_heaps",
    )

    def __init__(self, cluster: "Cluster", items: Optional[Dict[int, _QueueItem]]) -> None:
        self.items = items
        self.sketches = {
            w.tenant: LatencySketch(deadline_s=w.deadline_s) for w in cluster.workloads
        }
        self.batch_hist = StreamingHistogram.integers(cluster.max_batch_size)
        self.queue_hist = StreamingHistogram.power_of_two()
        self.dropped_by_tenant = {w.tenant: 0 for w in cluster.workloads}
        self.dropped_total = 0
        self.shed_by_tenant = {w.tenant: 0 for w in cluster.workloads}
        self.shed_total = 0
        self.max_completion_s = -math.inf
        self.max_dropped_arrival_s = -math.inf
        self.max_shed_arrival_s = -math.inf
        self._qd_arrived = {w.tenant: 0 for w in cluster.workloads}
        self._qd_popped = {w.tenant: 0 for w in cluster.workloads}
        self._qd_heaps: Dict[str, List[float]] = {w.tenant: [] for w in cluster.workloads}

    def on_batch(self, size: int) -> None:
        self.batch_hist.update(float(size))

    def on_record(
        self,
        item: _QueueItem,
        service_s: float,
        energy_j: float,
        start_s: float,
        completion_s: float,
        replica: int,
        batch_size: int,
    ) -> None:
        request = item.request
        self.sketches[request.tenant].observe(
            latency_s=completion_s - request.arrival_s,
            service_s=service_s,
            energy_j=energy_j,
            replica=replica,
            batch_size=batch_size,
        )
        heapq.heappush(self._qd_heaps[request.tenant], completion_s)
        if completion_s > self.max_completion_s:
            self.max_completion_s = completion_s
        if self.items is not None:
            del self.items[item.seq]

    def on_admit(self, request: ServingRequest) -> None:
        """Sample the tenant's queue depth at this (admitted) arrival."""
        tenant = request.tenant
        heap = self._qd_heaps[tenant]
        arrival = request.arrival_s
        popped = self._qd_popped[tenant]
        while heap and heap[0] <= arrival:
            heapq.heappop(heap)
            popped += 1
        self._qd_popped[tenant] = popped
        arrived = self._qd_arrived[tenant]
        self.sketches[tenant].queue.update(float(arrived - popped))
        self._qd_arrived[tenant] = arrived + 1

    def on_drop(self, request: ServingRequest) -> None:
        self.dropped_by_tenant[request.tenant] += 1
        self.dropped_total += 1
        if request.arrival_s > self.max_dropped_arrival_s:
            self.max_dropped_arrival_s = request.arrival_s

    def on_shed(self, request: ServingRequest) -> None:
        self.shed_by_tenant[request.tenant] += 1
        self.shed_total += 1
        if request.arrival_s > self.max_shed_arrival_s:
            self.max_shed_arrival_s = request.arrival_s

    def on_instant_sample(self, depth: int) -> None:
        self.queue_hist.update(float(depth))


@dataclass
class Cluster:
    """A pool of identical backend replicas serving many tenants.

    Parameters
    ----------
    workloads:
        The tenants (unique names).
    backend:
        Registered backend name; every replica is one instance of it.
    num_replicas:
        Pool size.
    policy:
        Dispatch policy name (``round_robin`` / ``least_loaded`` / ``edf``)
        or a :class:`DispatchPolicy` instance.
    max_batch_size / batch_timeout_s:
        Dynamic batching: a replica groups up to ``max_batch_size``
        same-tenant requests per dispatch, waiting at most
        ``batch_timeout_s`` after the oldest request's arrival for the
        batch to fill.  The defaults (1, 0) disable batching.
    queue_capacity:
        Bound on the number of queued requests; arrivals beyond it are
        dropped (admission control).  ``None`` means unbounded.
    measurement_cache:
        Optional :class:`~repro.api.MeasurementCache` backing the tenant
        services.  The serving-scenario sweep engine pre-measures every
        profile into one cache so no scenario re-measures the backend.
    autoscaler:
        Optional :class:`~repro.serve.autoscale.Autoscaler` (or its spec
        string, e.g. ``"reactive:min=1,max=8"``): the replica pool then
        starts at ``num_replicas`` and is resized at the autoscaler's tick
        interval, with provisioning latency and scale-down hysteresis.
    faults:
        Optional :class:`~repro.serve.faults.FaultSchedule` (or its spec
        string): deterministic replica crash/recover/degrade events
        interleaved with the simulation.
    admission:
        Optional :class:`~repro.serve.autoscale.AdmissionControl` (or its
        spec string, e.g. ``"queue=64,headroom=1.5"``): adaptive load
        shedding applied to every arrival, before the hard
        ``queue_capacity`` bound.  The ``carbon_waiting`` form
        (:class:`~repro.serve.autoscale.CarbonWaitingAdmission`) holds
        deferrable tenants' work for clean-grid windows instead.
    power:
        Optional :class:`~repro.serve.power.PowerModel` (or its spec
        string, e.g. ``"busy=2.0"``): per-replica power draw, integrated
        over the lifecycle timeline into ``ServingReport.energy_j``.  When
        omitted but ``carbon``/``power_cap_w`` demand one, a model is
        derived from the backend's measured energy (see
        :meth:`resolved_power`).
    carbon:
        Optional :class:`~repro.serve.carbon.CarbonIntensity` (or its spec
        string, e.g. ``"diurnal"``): grid carbon intensity over simulation
        time.  The report then carries ``carbon_gco2 = ∫ power × intensity``
        and carbon-aware admission/autoscaling read the trace.
    power_cap_w:
        Optional cluster-wide watt budget: a free replica is not dispatched
        when starting its batch would push total draw above the cap (the
        work waits, or is shed by the usual admission rules).

    Any of ``autoscaler``/``faults``/``admission``/``power``/``carbon``/
    ``power_cap_w`` makes the cluster *dynamic*: simulation runs through
    the dynamic event loop (pinned bit-identical to
    :func:`repro.serve.reference.reference_serve_dynamic`) and the report
    gains a replica-count timeline, ``replica_seconds`` and lifecycle event
    counts (plus per-replica energy and carbon when power is modelled).
    """

    workloads: Sequence[Workload]
    backend: str = "flowgnn"
    num_replicas: int = 1
    policy: Union[str, DispatchPolicy] = "round_robin"
    max_batch_size: int = 1
    batch_timeout_s: float = 0.0
    queue_capacity: Optional[int] = None
    measurement_cache: Optional[MeasurementCache] = None
    autoscaler: Union[str, Autoscaler, None] = None
    faults: Union[str, FaultSchedule, None] = None
    admission: Union[str, AdmissionControl, None] = None
    power: Union[str, PowerModel, None] = None
    carbon: Union[str, CarbonIntensity, None] = None
    power_cap_w: Optional[float] = None
    services: Dict[str, TenantService] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.workloads = list(self.workloads)
        if not self.workloads:
            raise ValueError("Cluster needs at least one workload")
        names = [w.tenant for w in self.workloads]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique; got {names}")
        if self.num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.batch_timeout_s < 0:
            raise ValueError("batch_timeout_s must be >= 0")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
        if isinstance(self.autoscaler, str):
            self.autoscaler = parse_autoscaler(self.autoscaler)
        if isinstance(self.faults, str):
            self.faults = FaultSchedule.parse(self.faults, num_replicas=self.num_replicas)
        if isinstance(self.admission, str):
            self.admission = parse_admission(self.admission)
        if isinstance(self.power, str):
            self.power = PowerModel.parse(self.power)
        if isinstance(self.carbon, str):
            self.carbon = CarbonIntensity.parse(self.carbon)
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError("power_cap_w must be > 0 (or None for uncapped)")
        if isinstance(self.policy, str):
            self.policy = get_policy(self.policy)
        backend_instance = get_backend(self.backend)
        self.backend = backend_instance.name
        self.services = {
            w.tenant: TenantService(w, backend_instance, cache=self.measurement_cache)
            for w in self.workloads
        }

    def with_replicas(
        self, num_replicas: int, policy: Union[str, DispatchPolicy, None] = None
    ) -> "Cluster":
        """A resized/re-policied view sharing the measured tenant services.

        Capacity planning sweeps replica counts; re-measuring the backend per
        point would dominate the sweep, so the clone reuses this cluster's
        :class:`TenantService` objects (replicas are identical hardware).
        """
        return self.with_options(num_replicas=num_replicas, policy=policy)

    def with_options(
        self,
        num_replicas: Optional[int] = None,
        policy: Union[str, DispatchPolicy, None] = None,
        max_batch_size: Optional[int] = None,
        batch_timeout_s: Optional[float] = None,
        queue_capacity: Union[int, None, object] = ...,
        autoscaler: Union[str, Autoscaler, None, object] = ...,
        faults: Union[str, FaultSchedule, None, object] = ...,
        admission: Union[str, AdmissionControl, None, object] = ...,
        power: Union[str, PowerModel, None, object] = ...,
        carbon: Union[str, CarbonIntensity, None, object] = ...,
        power_cap_w: Union[float, None, object] = ...,
    ) -> "Cluster":
        """A re-configured view of this cluster sharing its measured services.

        Any combination of pool size, dispatch policy, batching knobs,
        queue capacity and the dynamic-cluster knobs (autoscaler, fault
        schedule, adaptive admission) can be overridden; everything else
        (tenants, backend, measured :class:`TenantService` profiles) is
        shared with ``self``.  This is the primitive the serving-scenario
        sweep engine builds every grid point from without re-measuring.
        ``queue_capacity``/``autoscaler``/``faults``/``admission``/
        ``power``/``carbon``/``power_cap_w`` use ``...`` as their "keep
        current" default because ``None`` means unbounded/disabled.
        """
        clone = Cluster.__new__(Cluster)
        clone.__dict__.update(self.__dict__)
        if num_replicas is not None:
            if num_replicas < 1:
                raise ValueError("num_replicas must be >= 1")
            clone.num_replicas = int(num_replicas)
        if policy is not None:
            clone.policy = get_policy(policy) if isinstance(policy, str) else policy
        if max_batch_size is not None:
            if max_batch_size < 1:
                raise ValueError("max_batch_size must be >= 1")
            clone.max_batch_size = int(max_batch_size)
        if batch_timeout_s is not None:
            if batch_timeout_s < 0:
                raise ValueError("batch_timeout_s must be >= 0")
            clone.batch_timeout_s = float(batch_timeout_s)
        if queue_capacity is not ...:
            if queue_capacity is not None and queue_capacity < 1:
                raise ValueError("queue_capacity must be >= 1 (or None for unbounded)")
            clone.queue_capacity = queue_capacity
        if autoscaler is not ...:
            clone.autoscaler = (
                parse_autoscaler(autoscaler) if isinstance(autoscaler, str) else autoscaler
            )
        if faults is not ...:
            clone.faults = (
                FaultSchedule.parse(faults, num_replicas=clone.num_replicas)
                if isinstance(faults, str)
                else faults
            )
        if admission is not ...:
            clone.admission = (
                parse_admission(admission) if isinstance(admission, str) else admission
            )
        if power is not ...:
            clone.power = PowerModel.parse(power) if isinstance(power, str) else power
        if carbon is not ...:
            clone.carbon = (
                CarbonIntensity.parse(carbon) if isinstance(carbon, str) else carbon
            )
        if power_cap_w is not ...:
            if power_cap_w is not None and power_cap_w <= 0:
                raise ValueError("power_cap_w must be > 0 (or None for uncapped)")
            clone.power_cap_w = power_cap_w
        return clone

    @property
    def dynamic(self) -> bool:
        """Whether simulation must run the dynamic (lifecycle-aware) loop."""
        return (
            self.autoscaler is not None
            or self.faults is not None
            or self.admission is not None
            or self.power is not None
            or self.carbon is not None
            or self.power_cap_w is not None
        )

    def resolved_power(self) -> Optional[PowerModel]:
        """The power model in force, deriving one from measurements if needed.

        Explicit models win; otherwise, when carbon accounting or a power
        cap demands one, the busy draw is the backend's measured joules over
        measured service seconds across all tenants (the same per-request
        energy the report already accounts), with idle and provisioning
        draws as the standard fractions.  ``None`` when power is simply not
        being modelled.
        """
        if isinstance(self.power, PowerModel):
            return self.power
        if self.carbon is None and self.power_cap_w is None:
            return None
        energy = 0.0
        busy = 0.0
        for service in self.services.values():
            base = service.base_batch_size
            energy += float(service.energies_j(base).sum())
            busy += float(service.latencies_s(base).sum())
        if busy <= 0.0:
            return PowerModel.from_busy(0.0)
        return PowerModel.from_energy(energy, busy)

    def mean_service_s(self) -> float:
        """Mean batch-1 service time across tenants (capacity heuristics)."""
        means = [service.mean_service_s() for service in self.services.values()]
        return float(np.mean(means)) if means else 0.0

    # -- simulation -----------------------------------------------------------
    def serve(
        self,
        requests: Sequence[ServingRequest],
        duration_s: Optional[float] = None,
        mode: str = "exact",
    ) -> ServingReport:
        """Run the event-driven simulation over ``requests``.

        ``duration_s`` only stretches the utilisation horizon (e.g. to the
        load generator's configured duration); every submitted request is
        served to completion regardless.

        ``mode`` selects the aggregation path.  ``"exact"`` (the default and
        the oracle) stores per-request records and arrays; ``"sketch"``
        folds every completion into O(tenants + replicas) online
        accumulators — same event loop, same floats for counts, drops and
        utilisation, P²-estimated percentiles — and accepts ``requests`` as
        any iterable already sorted by ``(arrival_s, tenant_index, index)``
        (what :meth:`LoadGenerator.iter_requests` yields), never holding
        more than the queued backlog in memory.  For sketch mode straight
        from a generator — including the vectorised FIFO fast path — see
        :meth:`serve_stream`.

        The dispatcher keeps the pending requests in policy-ordered heaps —
        one *lane* per replica for pinned requests plus one shared lane —
        instead of re-sorting the whole queue at every event like the
        reference implementation
        (:func:`repro.serve.reference.reference_serve`).  Without dynamic
        batching a dispatch is a heap pop, O(log n); with batching the
        selection scans (and pushes back) only as far as the batching
        decision requires, which degrades toward the reference's full walk
        only when no batch is releasable.  The two are bit-identical; the
        contract test and ``benchmarks/test_serve_speedup.py`` hold them
        together.
        """
        if mode not in ("exact", "sketch"):
            raise ValueError(f"mode must be 'exact' or 'sketch', got {mode!r}")
        if self.dynamic:
            ordered = sorted(
                requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index)
            )
            return self._serve_dynamic(iter(ordered), duration_s, mode)
        if mode == "sketch":
            return self._serve_sketch(iter(requests), duration_s)
        policy = self.policy
        policy.reset(self.num_replicas)
        for request in requests:
            if request.tenant not in self.services:
                raise ValueError(f"request for unknown tenant {request.tenant!r}")
        items = [
            _QueueItem(
                request=request,
                seq=seq,
                service_s=self.services[request.tenant].service_s(
                    request.graph_index,
                    batch_size=self.services[request.tenant].base_batch_size,
                ),
            )
            for seq, request in enumerate(
                sorted(requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index))
            )
        ]

        state = _SimState(
            busy_until=[0.0] * self.num_replicas,
            queued_work=[0.0] * self.num_replicas,
        )
        busy_time = [0.0] * self.num_replicas
        # Policy-ordered lanes.  An entry is (order_key + (seq,), seq); keys
        # are computed once at admission, which requires policy order keys to
        # be stable while a request waits (true of every built-in policy).
        lanes = _Lanes(
            shared=[],
            per_replica=[[] for _ in range(self.num_replicas)],
            pending=0,
        )
        sink = _ExactSink()
        dropped: List[ServingRequest] = []
        trace_times: List[float] = []
        trace_depths: List[int] = []
        scheduled_timers: set = set()

        # Heap entries: (time, kind, tiebreak).  Completions at a timestamp
        # are processed before arrivals/timers at the same timestamp.
        events: List[Tuple[float, int, int]] = [
            (item.request.arrival_s, _ARRIVAL, item.seq) for item in items
        ]
        heapq.heapify(events)

        while events:
            now = events[0][0]
            state.now = now
            # Drain every event at this instant before dispatching, so a
            # policy sees simultaneous arrivals together (e.g. EDF must pick
            # the tightest deadline of a burst, not whichever the heap pops
            # first).  Completions sort before arrivals/timers within the
            # instant, freeing replicas for the new work.
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    item = items[payload]
                    if (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        dropped.append(item.request)
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                # _COMPLETION frees its replica implicitly (busy_until <= now);
                # _TIMER just wakes the dispatcher for a held batch.
            # Sample the queue at its peak — after admissions, before
            # dispatch drains it — so max_queue_depth is consistent with the
            # drop count when a bounded queue fills.
            trace_times.append(now)
            trace_depths.append(lanes.pending)
            self._dispatch(
                now, state, lanes, items, busy_time, sink, events, scheduled_timers
            )

        assert lanes.pending == 0, "simulation ended with requests still queued"
        return assemble_report(
            cluster=self,
            records=sink.records,
            dropped=dropped,
            busy_time=busy_time,
            batch_sizes=sink.batch_sizes,
            trace_times=np.array(trace_times, dtype=np.float64),
            trace_depths=np.array(trace_depths, dtype=np.int64),
            duration_s=duration_s,
        )

    def serve_stream(
        self,
        generator: "LoadGenerator",
        duration_s: Optional[float] = None,
        num_requests: Optional[int] = None,
        mode: str = "sketch",
    ) -> ServingReport:
        """Serve a :class:`LoadGenerator`'s stream without materialising it.

        In sketch mode the request sequence is consumed lazily
        (:meth:`LoadGenerator.iter_requests`), so a million-request trace
        costs O(tenants x chunk + backlog) memory end to end.  When the
        configuration permits — ``round_robin`` dispatch, no batching, an
        unbounded queue — the simulation runs the vectorised FIFO fast path
        over :meth:`LoadGenerator.iter_request_blocks` instead of the scalar
        event loop; both produce the same report (counts, drops and
        utilisation bit-identical to the exact oracle, percentiles within
        the sketch tolerance).  ``mode="exact"`` materialises the sequence
        and runs the array-backed oracle path.
        """
        if mode not in ("exact", "sketch"):
            raise ValueError(f"mode must be 'exact' or 'sketch', got {mode!r}")
        if mode == "exact":
            return self.serve(
                generator.generate(duration_s=duration_s, num_requests=num_requests),
                duration_s=duration_s,
            )
        for workload in generator.workloads:
            if workload.tenant not in self.services:
                raise ValueError(
                    f"load generator tenant {workload.tenant!r} unknown to cluster"
                )
        if self._fast_path_eligible():
            return self._serve_stream_fast(generator, duration_s, num_requests)
        if self.dynamic:
            return self._serve_dynamic(
                generator.iter_requests(duration_s=duration_s, num_requests=num_requests),
                duration_s,
                "sketch",
            )
        return self._serve_sketch(
            generator.iter_requests(duration_s=duration_s, num_requests=num_requests),
            duration_s,
        )

    def _fast_path_eligible(self) -> bool:
        """FIFO-lane vectorisation is valid only when dispatch is pure
        round-robin pinning (not a subclass overriding ``assign``), batches
        are single requests (no timers, measurement at the declared batch
        size), admission never drops (unbounded queue) and the replica set
        is static (no autoscaler, faults or adaptive admission)."""
        return (
            type(self.policy) is RoundRobinPolicy
            and self.max_batch_size == 1
            and self.queue_capacity is None
            and not self.dynamic
        )

    def _serve_sketch(
        self, request_iter: Iterable[ServingRequest], duration_s: Optional[float]
    ) -> ServingReport:
        """The event loop with lazy arrivals and online aggregation.

        Identical dispatch semantics to the exact path — same heap, same
        tie-breaking, same float operations on start/finish/busy times — but
        arrivals are pulled from ``request_iter`` one ahead of the event
        heap (the stream is sorted, so one lookahead suffices) and every
        completion folds into a :class:`_SketchSink` instead of a record
        list.  Peak memory is the queued backlog, not the request count.
        """
        policy = self.policy
        policy.reset(self.num_replicas)
        request_iter = iter(request_iter)
        state = _SimState(
            busy_until=[0.0] * self.num_replicas,
            queued_work=[0.0] * self.num_replicas,
        )
        busy_time = [0.0] * self.num_replicas
        lanes = _Lanes(
            shared=[],
            per_replica=[[] for _ in range(self.num_replicas)],
            pending=0,
        )
        items: Dict[int, _QueueItem] = {}
        sink = _SketchSink(self, items)
        scheduled_timers: set = set()
        events: List[Tuple[float, int, int]] = []
        next_seq = 0
        prev_key: Optional[Tuple[float, int, int]] = None

        def pull() -> None:
            """Admit the next request of the stream into the event heap."""
            nonlocal next_seq, prev_key
            request = next(request_iter, None)
            if request is None:
                return
            if request.tenant not in self.services:
                raise ValueError(f"request for unknown tenant {request.tenant!r}")
            key = (request.arrival_s, request.tenant_index, request.index)
            if prev_key is not None and key < prev_key:
                raise ValueError(
                    "sketch-mode serve requires requests sorted by "
                    "(arrival_s, tenant_index, index); use "
                    "LoadGenerator.iter_requests or sort the sequence"
                )
            prev_key = key
            service = self.services[request.tenant]
            items[next_seq] = _QueueItem(
                request=request,
                seq=next_seq,
                service_s=service.service_s(
                    request.graph_index, batch_size=service.base_batch_size
                ),
            )
            heapq.heappush(events, (request.arrival_s, _ARRIVAL, next_seq))
            next_seq += 1

        pull()
        while events:
            now = events[0][0]
            state.now = now
            saw_arrival = False
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    saw_arrival = True
                    item = items[payload]
                    # Keep exactly one future arrival in the heap: if the
                    # next request shares this timestamp it joins this
                    # instant's drain, preserving the exact loop's
                    # simultaneous-arrival semantics.
                    pull()
                    if (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        sink.on_drop(item.request)
                        del items[item.seq]
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                        sink.on_admit(item.request)
            # Exact mode samples the queue at every instant; the maximum is
            # always attained at an arrival instant (depth only grows at
            # admissions), so sampling those keeps max_queue_depth identical
            # while the histogram documents arrival-instant depths only.
            if saw_arrival:
                sink.on_instant_sample(lanes.pending)
            self._dispatch(
                now, state, lanes, items, busy_time, sink, events, scheduled_timers
            )

        assert lanes.pending == 0, "simulation ended with requests still queued"
        assert not items, "streaming loop leaked queue items"
        return assemble_sketch_report(
            cluster=self,
            sketches=sink.sketches,
            dropped_by_tenant=sink.dropped_by_tenant,
            busy_time=busy_time,
            batch_size_hist=sink.batch_hist,
            queue_depth_hist=sink.queue_hist,
            max_completion_s=sink.max_completion_s,
            max_dropped_arrival_s=sink.max_dropped_arrival_s,
            duration_s=duration_s,
        )

    def _serve_dynamic(
        self,
        request_iter: Iterable[ServingRequest],
        duration_s: Optional[float],
        mode: str,
    ) -> ServingReport:
        """The event loop with a mutable replica set (the dynamic cluster).

        Extends the static loop with a control plane on the same time-ordered
        heap: ``_FAIL``/``_RECOVER`` events from the fault schedule,
        ``_SCALE`` events for autoscaler ticks, provisioning completions and
        drain retirements.  Replicas carry lifecycle states (provisioning ->
        active -> draining -> dead, plus degraded service-time factors), the
        dispatch policy sees the dispatchable subset through ``state.live``,
        and adaptive admission may shed arrivals before the hard queue bound.
        Rented-replica time (what a deployment pays for) is integrated online
        so both modes report ``replica_seconds`` with identical float
        operations; exact mode keeps the full replica-count timeline, sketch
        mode folds it into a lossless integer histogram, keeping
        O(tenants + replicas) memory.

        Crash semantics: records are emitted at dispatch time (and sketches
        cannot retract an observation), so a replica's in-flight batch
        completes even when the replica fails mid-batch — a ``fail`` kills
        the replica's future, not its present.  Queued requests pinned to it
        are re-routed through the policy.

        Bit-identical to :func:`repro.serve.reference.reference_serve_dynamic`
        (the full-sort scalar oracle), which the dynamic contract tests pin.
        """
        policy = self.policy
        policy.reset(self.num_replicas)
        autoscaler = self.autoscaler
        carbon_trace = self.carbon
        if autoscaler is not None:
            autoscaler.reset()
            autoscaler.bind_carbon(carbon_trace)
        admission = self.admission
        power_model = self.resolved_power()
        holding = (
            isinstance(admission, CarbonWaitingAdmission) and carbon_trace is not None
        )
        tenant_classes = {w.tenant: w.tenant_class for w in self.workloads}
        mean_service = self.mean_service_s()
        request_iter = iter(request_iter)
        exact = mode == "exact"

        num_initial = self.num_replicas
        state = _SimState(
            busy_until=[0.0] * num_initial,
            queued_work=[0.0] * num_initial,
        )
        states = [_ACTIVE] * num_initial
        factors = [1.0] * num_initial
        busy_time = [0.0] * num_initial
        lanes = _Lanes(
            shared=[],
            per_replica=[[] for _ in range(num_initial)],
            pending=0,
        )
        items: Dict[int, _QueueItem] = {}
        if exact:
            sink: Union[_ExactSink, _SketchSink] = _ExactSink()
            trace_times: List[float] = []
            trace_depths: List[int] = []
            timeline_times: List[float] = [0.0]
            timeline_counts: List[int] = [num_initial]
            replica_hist: Optional[StreamingHistogram] = None
        else:
            cap = num_initial
            if autoscaler is not None:
                cap = max(cap, autoscaler.max_replicas)
            sink = _SketchSink(self, items)
            replica_hist = StreamingHistogram.integers(cap)
            replica_hist.update(float(num_initial))
        scheduled_timers: set = set()
        events: List[Tuple[float, int, int]] = []
        # Control events carry an index into this list; creation order is the
        # deterministic tie-break among same-instant controls of one kind.
        controls: List[Tuple[str, int, float]] = []
        counts = _new_event_counts()

        rented = num_initial          # provisioning + active + draining
        rented_integral = 0.0         # integral of `rented` dt (cost accounting)
        last_change_s = 0.0
        last_scale_up_s = -math.inf
        arrivals_since = 0            # offered arrivals since the last tick
        completions_since = 0         # batch completions since the last tick
        next_seq = 0
        prev_key: Optional[Tuple[float, int, int]] = None

        # Power ledger: per-replica draw is piecewise constant between event
        # instants, so energy (and, against the carbon trace, gCO2) is an
        # exact segment sum — the same online-integral shape as the rented
        # timeline, with identical float operations in the oracle.
        watts: List[float] = []
        last_w_change: List[float] = []
        energy_acc: List[float] = []
        power_w = 0.0
        carbon_g = 0.0
        last_c_change = 0.0
        if power_model is not None:
            for _ in range(num_initial):
                watts.append(power_model.idle_w)
                last_w_change.append(0.0)
                energy_acc.append(0.0)
                power_w += power_model.idle_w

        def power_set(now: float, r: int, new_w: float) -> None:
            """Close replica ``r``'s power segment at ``now``, switch its draw."""
            nonlocal power_w, carbon_g, last_c_change
            if carbon_trace is not None:
                carbon_g += power_w * carbon_trace.integral_g_per_j(last_c_change, now)
                last_c_change = now
            energy_acc[r] += watts[r] * (now - last_w_change[r])
            last_w_change[r] = now
            power_w = power_w - watts[r] + new_w
            watts[r] = new_w

        def power_add(now: float, new_w: float) -> None:
            """Start a fresh replica's ledger at ``now`` drawing ``new_w``."""
            nonlocal power_w, carbon_g, last_c_change
            if carbon_trace is not None:
                carbon_g += power_w * carbon_trace.integral_g_per_j(last_c_change, now)
                last_c_change = now
            watts.append(new_w)
            last_w_change.append(now)
            energy_acc.append(0.0)
            power_w = power_w + new_w

        power_busy: Optional[Callable[[float, int], None]] = None
        power_gate: Optional[Callable[[float, int], bool]] = None
        if power_model is not None:

            def power_busy(now: float, r: int) -> None:
                power_set(now, r, power_model.busy_watts(factors[r]))

            if self.power_cap_w is not None:
                cap_w = self.power_cap_w

                def power_gate(now: float, r: int) -> bool:
                    if (
                        power_w - watts[r] + power_model.busy_watts(factors[r])
                        <= cap_w
                    ):
                        return False
                    # Over the cap: block only while some batch is in
                    # flight — its completion lowers the draw and re-runs
                    # dispatch.  With nothing in flight the draw can never
                    # drop again, so a cap below the pool's idle-plus-one-
                    # busy draw serialises work instead of wedging the
                    # simulation (and its autoscaler ticks) forever.
                    return any(t > now for t in state.busy_until)

        # Deferrable work held for a cleaner grid window: an EDD heap of
        # (absolute deadline, seq); each hold schedules its own release
        # control at min(deadline - headroom x service, next clean window).
        held: List[Tuple[float, int]] = []

        def release_held(now: float) -> None:
            """Queue every held request that is due or whose grid is clean."""
            clean = (
                carbon_trace.intensity_at(now) <= admission.carbon_threshold
            )
            kept: List[Tuple[float, int]] = []
            while held:
                deadline, seq = heapq.heappop(held)
                item = items[seq]
                due = admission.release_at_s(deadline, item.service_s)
                if clean or now >= due:
                    if (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        sink.on_drop(item.request)
                        del items[seq]
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                else:
                    kept.append((deadline, seq))
            for entry in kept:
                heapq.heappush(held, entry)

        def push_control(
            time_s: float, kind: int, action: str, replica: int, factor: float = 1.0
        ) -> None:
            heapq.heappush(events, (time_s, kind, len(controls)))
            controls.append((action, replica, factor))

        def timeline(now: float, delta: int) -> None:
            """Account a rented-count change (same float ops as the oracle)."""
            nonlocal rented, rented_integral, last_change_s
            rented_integral += rented * (now - last_change_s)
            last_change_s = now
            rented += delta
            if exact:
                timeline_times.append(now)
                timeline_counts.append(rented)
            else:
                replica_hist.update(float(rented))

        def reroute(replica: int) -> None:
            """Hand a dead/draining replica's queued items back to the policy."""
            lane = lanes.per_replica[replica]
            if not lane:
                return
            entries = sorted(lane, key=lambda entry: entry[1])  # seq order
            del lane[:]
            for key, seq in entries:
                item = items[seq]
                state.queued_work[replica] -= item.service_s
                item.replica = policy.assign(item, state)
                if item.replica is not None:
                    state.queued_work[item.replica] += item.service_s
                target = (
                    lanes.shared
                    if item.replica is None
                    else lanes.per_replica[item.replica]
                )
                heapq.heappush(target, (key, seq))

        def add_replicas(now: float, count: int) -> None:
            nonlocal last_scale_up_s
            for _ in range(count):
                rid = len(states)
                states.append(_PROVISIONING)
                factors.append(1.0)
                state.busy_until.append(0.0)
                state.queued_work.append(0.0)
                busy_time.append(0.0)
                lanes.per_replica.append([])
                if power_model is not None:
                    power_add(now, power_model.provisioning_w)
                push_control(
                    now + autoscaler.provision_delay_s, _SCALE, "provision", rid
                )
            policy.rebind(len(states))
            timeline(now, count)
            counts["scale_up_events"] += 1
            counts["replicas_added"] += count
            last_scale_up_s = now

        def remove_replicas(now: float, count: int) -> None:
            # Cancel still-provisioning replicas first (newest first), then
            # drain active ones (highest id first): the cheapest capacity to
            # give back is capacity not yet delivering.
            victims = sorted(
                (r for r in range(len(states)) if states[r] == _PROVISIONING),
                reverse=True,
            )[:count]
            remaining = count - len(victims)
            if remaining:
                victims.extend(sorted(state.live, reverse=True)[:remaining])
            for r in victims:
                if states[r] == _PROVISIONING:
                    states[r] = _DEAD
                    if power_model is not None:
                        power_set(now, r, 0.0)
                    timeline(now, -1)
                else:
                    states[r] = _DRAINING
                    state.live.remove(r)
                    reroute(r)
                    drain_end = (
                        state.busy_until[r] if state.busy_until[r] > now else now
                    )
                    push_control(drain_end, _SCALE, "retire", r)
            counts["scale_down_events"] += 1
            counts["replicas_removed"] += len(victims)

        def handle_control(now: float, action: str, replica: int, factor: float) -> None:
            nonlocal arrivals_since, completions_since
            if action == "tick":
                active = len(state.live)
                provisioning = sum(1 for s in states if s == _PROVISIONING)
                busy = sum(1 for r in state.live if state.busy_until[r] > now)
                metrics = AutoscalerMetrics(
                    now_s=now,
                    queue_depth=lanes.pending,
                    active_replicas=active,
                    provisioning_replicas=provisioning,
                    busy_replicas=busy,
                    arrivals_since_last=arrivals_since,
                    batch_completions_since_last=completions_since,
                    interval_s=autoscaler.interval_s,
                    mean_service_s=mean_service,
                )
                arrivals_since = 0
                completions_since = 0
                desired = int(autoscaler.desired_replicas(metrics))
                desired = max(
                    autoscaler.min_replicas, min(autoscaler.max_replicas, desired)
                )
                target = active + provisioning
                if desired > target:
                    add_replicas(now, desired - target)
                elif (
                    desired < target
                    and now - last_scale_up_s >= autoscaler.scale_down_hysteresis_s
                ):
                    remove_replicas(now, target - desired)
                # Keep ticking while there is anything left to react to;
                # min_replicas >= 1 guarantees a scale-up whenever the pool
                # has emptied with work still queued, so progress is assured.
                if events or lanes.pending:
                    push_control(now + autoscaler.interval_s, _SCALE, "tick", -1)
            elif action == "provision":
                if states[replica] == _PROVISIONING:
                    states[replica] = _ACTIVE
                    if power_model is not None:
                        power_set(now, replica, power_model.idle_w)
                    insort(state.live, replica)
            elif action == "retire":
                if states[replica] == _DRAINING:
                    states[replica] = _DEAD
                    if power_model is not None:
                        power_set(now, replica, 0.0)
                    timeline(now, -1)
            elif action == "fail":
                if replica < len(states) and states[replica] in (_PROVISIONING, _ACTIVE):
                    was_active = states[replica] == _ACTIVE
                    states[replica] = _DEAD
                    if was_active:
                        state.live.remove(replica)
                        reroute(replica)
                    # A failed replica draws nothing from the fail instant,
                    # even mid-batch (the batch's records were already
                    # emitted at dispatch; its silicon is simply off).
                    if power_model is not None:
                        power_set(now, replica, 0.0)
                    timeline(now, -1)
                    counts["failures"] += 1
            elif action == "recover":
                if replica < len(states) and states[replica] == _DEAD:
                    states[replica] = _ACTIVE
                    factors[replica] = 1.0
                    if power_model is not None:
                        power_set(now, replica, power_model.idle_w)
                    insort(state.live, replica)
                    timeline(now, 1)
                    counts["recoveries"] += 1
            elif action == "degrade":
                if replica < len(states) and states[replica] == _ACTIVE:
                    factors[replica] = factor
                    counts["degradations"] += 1
            elif action == "restore":
                if (
                    replica < len(states)
                    and states[replica] == _ACTIVE
                    and factors[replica] != 1.0
                ):
                    factors[replica] = 1.0
                    counts["restorations"] += 1
            elif action == "release":
                # Any release control drains the whole held heap of whatever
                # is due or clean — a single clean-window edge releases
                # every waiting request at once, in EDD order.
                if held:
                    release_held(now)

        def pull() -> None:
            """Admit the next request of the stream into the event heap."""
            nonlocal next_seq, prev_key
            request = next(request_iter, None)
            if request is None:
                return
            if request.tenant not in self.services:
                raise ValueError(f"request for unknown tenant {request.tenant!r}")
            key = (request.arrival_s, request.tenant_index, request.index)
            if prev_key is not None and key < prev_key:
                raise ValueError(
                    "dynamic serve requires requests sorted by "
                    "(arrival_s, tenant_index, index); use "
                    "LoadGenerator.iter_requests or sort the sequence"
                )
            prev_key = key
            service = self.services[request.tenant]
            items[next_seq] = _QueueItem(
                request=request,
                seq=next_seq,
                service_s=service.service_s(
                    request.graph_index, batch_size=service.base_batch_size
                ),
            )
            heapq.heappush(events, (request.arrival_s, _ARRIVAL, next_seq))
            next_seq += 1

        if self.faults is not None:
            for fault in self.faults.events:
                kind = _FAIL if fault.action in ("fail", "degrade") else _RECOVER
                push_control(fault.time_s, kind, fault.action, fault.replica, fault.factor)
        if autoscaler is not None:
            push_control(autoscaler.interval_s, _SCALE, "tick", -1)
        pull()
        while events:
            now = events[0][0]
            state.now = now
            saw_arrival = False
            while events and events[0][0] == now:
                _, kind, payload = heapq.heappop(events)
                if kind == _ARRIVAL:
                    saw_arrival = True
                    arrivals_since += 1
                    item = items[payload]
                    pull()
                    held_now = False
                    if (
                        holding
                        and tenant_classes[item.request.tenant] == "deferrable"
                        and carbon_trace.intensity_at(now) > admission.carbon_threshold
                    ):
                        deadline = item.request.absolute_deadline_s
                        due = admission.release_at_s(deadline, item.service_s)
                        next_clean = carbon_trace.next_below_s(
                            admission.carbon_threshold, now
                        )
                        release_at = due if due < next_clean else next_clean
                        if now < release_at < math.inf:
                            # Held: still submitted (the sketch samples its
                            # queue depth now, in arrival order, exactly as
                            # the exact path's formula does), queued later.
                            held_now = True
                            sink.on_admit(item.request)
                            heapq.heappush(held, (deadline, item.seq))
                            push_control(release_at, _SCALE, "release", item.seq)
                    if held_now:
                        pass
                    elif admission is not None and admission.should_shed(
                        item, lanes.pending, state
                    ):
                        sink.on_shed(item.request)
                        del items[item.seq]
                    elif (
                        self.queue_capacity is not None
                        and lanes.pending >= self.queue_capacity
                    ):
                        sink.on_drop(item.request)
                        del items[item.seq]
                    else:
                        item.replica = policy.assign(item, state)
                        if item.replica is not None:
                            state.queued_work[item.replica] += item.service_s
                        lanes.admit(item, policy.order_key(item) + (item.seq,))
                        sink.on_admit(item.request)
                elif kind == _COMPLETION:
                    completions_since += 1
                    if power_model is not None:
                        power_set(
                            now,
                            payload,
                            power_model.idle_w
                            if states[payload] in (_ACTIVE, _DRAINING)
                            else 0.0,
                        )
                elif kind == _TIMER:
                    pass
                else:
                    action, target, factor = controls[payload]
                    handle_control(now, action, target, factor)
            if exact:
                trace_times.append(now)
                trace_depths.append(lanes.pending)
            elif saw_arrival:
                sink.on_instant_sample(lanes.pending)
            self._dispatch(
                now,
                state,
                lanes,
                items,
                busy_time,
                sink,
                events,
                scheduled_timers,
                live=state.live,
                factors=factors,
                power_gate=power_gate,
                power_busy=power_busy,
            )

        if lanes.pending:
            # Unserviceable backlog: every replica is gone and nothing on the
            # heap will revive one (impossible with an autoscaler, whose
            # min_replicas >= 1 keeps ticking while work is queued).  Count
            # the leftovers as shed so conservation still holds.
            leftover: List[int] = []
            for lane in [lanes.shared] + lanes.per_replica:
                leftover.extend(seq for _, seq in lane)
                del lane[:]
            for seq in sorted(leftover):
                sink.on_shed(items.pop(seq).request)
            lanes.pending = 0

        replica_seconds_state = (rented_integral, last_change_s, rented)
        power_state = None
        if power_model is not None:
            power_state = (
                energy_acc,
                watts,
                last_w_change,
                power_w,
                carbon_g,
                last_c_change,
                carbon_trace,
            )
        if exact:
            return assemble_report(
                cluster=self,
                records=sink.records,
                dropped=sink.dropped,
                busy_time=busy_time,
                batch_sizes=sink.batch_sizes,
                trace_times=np.array(trace_times, dtype=np.float64),
                trace_depths=np.array(trace_depths, dtype=np.int64),
                duration_s=duration_s,
                shed=sink.shed,
                replica_count_times_s=np.array(timeline_times, dtype=np.float64),
                replica_count_trace=np.array(timeline_counts, dtype=np.int64),
                replica_seconds_state=replica_seconds_state,
                event_counts=counts,
                power_state=power_state,
            )
        assert not items, "dynamic streaming loop leaked queue items"
        return assemble_sketch_report(
            cluster=self,
            sketches=sink.sketches,
            dropped_by_tenant=sink.dropped_by_tenant,
            busy_time=busy_time,
            batch_size_hist=sink.batch_hist,
            queue_depth_hist=sink.queue_hist,
            max_completion_s=sink.max_completion_s,
            max_dropped_arrival_s=sink.max_dropped_arrival_s,
            duration_s=duration_s,
            shed_by_tenant=sink.shed_by_tenant,
            max_shed_arrival_s=sink.max_shed_arrival_s,
            replica_count_hist=replica_hist,
            replica_seconds_state=replica_seconds_state,
            event_counts=counts,
            power_state=power_state,
        )

    def _serve_stream_fast(
        self,
        generator: "LoadGenerator",
        duration_s: Optional[float],
        num_requests: Optional[int],
    ) -> ServingReport:
        """Vectorised FIFO fast path over merged request blocks.

        Under round-robin pinning with no batching and no admission control,
        the event loop collapses to per-replica FIFO recurrences: request
        ``k`` (global arrival order) runs on replica ``k % R`` and starts at
        ``max(arrival, previous finish)``.  Everything else — service/energy
        lookups, end-to-end latencies, deadline misses, queue depths — is
        numpy over :meth:`LoadGenerator.iter_request_blocks`.  The start/
        finish recurrence stays a scalar loop on purpose: it replays the
        exact event loop's float operations (branch-max, one add per
        request, one subtract into busy time), keeping utilisation
        bit-identical to the oracle.

        Queue depths replicate the exact trace's definition.  Cluster level:
        depth after the admissions of arrival instant ``t`` is
        ``#{arrivals <= t} - #{starts < t}``, evaluated at the last arrival
        of each distinct timestamp.  Per tenant:
        ``i - #{tenant completions <= arrival_i}`` exactly as
        :func:`~repro.graph.queue_depths_at_arrivals`.  Completions and
        starts still pending against future arrivals are carried between
        blocks, so memory is O(tenants x chunk + backlog).
        """
        num_replicas = self.num_replicas
        workloads = list(generator.workloads)
        num_tenants = len(workloads)

        # Padded per-tenant service/energy lookup tables at the declared
        # batch size (what a batch-1 dispatch measures at).
        services = [self.services[w.tenant] for w in workloads]
        pool_sizes = [service.latencies_s(service.base_batch_size).size for service in services]
        width = max(pool_sizes) if pool_sizes else 1
        lat_lut = np.zeros((num_tenants, width), dtype=np.float64)
        energy_lut = np.zeros((num_tenants, width), dtype=np.float64)
        deadlines = np.full(num_tenants, np.inf, dtype=np.float64)
        for t, (workload, service) in enumerate(zip(workloads, services)):
            base = service.base_batch_size
            lat_lut[t, : pool_sizes[t]] = service.latencies_s(base)
            energy_lut[t, : pool_sizes[t]] = service.energies_j(base)
            if workload.deadline_s is not None:
                deadlines[t] = workload.deadline_s

        sink = _SketchSink(self, items=None)
        sketches = [sink.sketches[w.tenant] for w in workloads]
        busy_time = [0.0] * num_replicas
        prev_finish = [0.0] * num_replicas
        replica_offset = 0          # global round-robin counter (mod R)
        total_arrived = 0           # global arrivals so far (cluster depth)
        start_carry = np.zeros(0, dtype=np.float64)   # starts > last arrival
        starts_counted = 0          # starts already < past arrivals
        qd_carry: List[np.ndarray] = [np.zeros(0, dtype=np.float64) for _ in range(num_tenants)]
        qd_counted = [0] * num_tenants
        qd_arrived = [0] * num_tenants
        served_any = False

        for block in generator.iter_request_blocks(
            duration_s=duration_s, num_requests=num_requests
        ):
            n = len(block)
            if not n:
                continue
            served_any = True
            arrival = block.arrival_s
            tenant_idx = block.tenant_index
            service_s = lat_lut[tenant_idx, block.graph_index]
            energy_j = energy_lut[tenant_idx, block.graph_index]
            replica = (replica_offset + np.arange(n, dtype=np.int64)) % num_replicas
            replica_offset = (replica_offset + n) % num_replicas

            # Per-replica FIFO recurrence — scalar on purpose (see above).
            starts = np.empty(n, dtype=np.float64)
            finishes = np.empty(n, dtype=np.float64)
            for r in range(num_replicas):
                rows = np.nonzero(replica == r)[0]
                if not rows.size:
                    continue
                prev = prev_finish[r]
                busy = busy_time[r]
                start_list: List[float] = []
                finish_list: List[float] = []
                for a, s in zip(arrival[rows].tolist(), service_s[rows].tolist()):
                    start = a if a >= prev else prev
                    prev = start + s
                    busy += prev - start
                    start_list.append(start)
                    finish_list.append(prev)
                starts[rows] = start_list
                finishes[rows] = finish_list
                prev_finish[r] = prev
                busy_time[r] = busy

            latency = finishes - arrival

            # Cluster queue depth at each distinct arrival instant.
            start_pool = np.sort(np.concatenate([start_carry, starts]))
            before = starts_counted + np.searchsorted(start_pool, arrival, side="left")
            depths = (total_arrived + np.arange(1, n + 1)) - before
            last_of_instant = np.empty(n, dtype=bool)
            last_of_instant[-1] = True
            np.not_equal(arrival[1:], arrival[:-1], out=last_of_instant[:-1])
            sink.queue_hist.update_many(depths[last_of_instant].astype(np.float64))
            consumed = int(np.searchsorted(start_pool, arrival[-1], side="left"))
            starts_counted += consumed
            start_carry = start_pool[consumed:]
            total_arrived += n
            sink.batch_hist.update_many(np.ones(n))

            # Per-tenant aggregation.
            for t in np.unique(tenant_idx):
                rows = np.nonzero(tenant_idx == t)[0]
                k = rows.size
                arr_t = arrival[rows]
                fin_t = finishes[rows]
                sketches[t].observe_block(
                    latencies_s=latency[rows],
                    services_s=service_s[rows],
                    energies_j=energy_j[rows],
                    replicas=replica[rows],
                )
                # depth_i = i - #{completions <= arrival_i}; completions of
                # this block's own (and later) requests finish strictly
                # after their arrivals, so pooling them in is harmless.
                pool = np.sort(np.concatenate([qd_carry[t], fin_t]))
                done = qd_counted[t] + np.searchsorted(pool, arr_t, side="right")
                depth_t = (qd_arrived[t] + np.arange(k)) - done
                sketches[t].queue.update_many(depth_t.astype(np.float64))
                consumed_t = int(np.searchsorted(pool, arr_t[-1], side="right"))
                qd_counted[t] += consumed_t
                qd_carry[t] = pool[consumed_t:]
                qd_arrived[t] += k

        if served_any:
            sink.max_completion_s = max(prev_finish)
        return assemble_sketch_report(
            cluster=self,
            sketches=sink.sketches,
            dropped_by_tenant=sink.dropped_by_tenant,
            busy_time=busy_time,
            batch_size_hist=sink.batch_hist,
            queue_depth_hist=sink.queue_hist,
            max_completion_s=sink.max_completion_s,
            max_dropped_arrival_s=sink.max_dropped_arrival_s,
            duration_s=duration_s,
        )

    # -- dispatch -------------------------------------------------------------
    def _dispatch(
        self,
        now: float,
        state: _SimState,
        lanes: "_Lanes",
        items: Union[List[_QueueItem], Dict[int, _QueueItem]],
        busy_time: List[float],
        sink: Union[_ExactSink, _SketchSink],
        events: List[Tuple[float, int, int]],
        scheduled_timers: set,
        live: Optional[List[int]] = None,
        factors: Optional[List[float]] = None,
        power_gate: Optional[Callable[[float, int], bool]] = None,
        power_busy: Optional[Callable[[float, int], None]] = None,
    ) -> None:
        """Start work on every replica that is free at ``now``.

        ``live`` restricts dispatch to the dynamic loop's dispatchable
        replica ids (default: the full static pool); ``factors`` supplies
        per-replica service-time multipliers for degraded replicas (default:
        none, and the static float operations are untouched).  ``power_gate``
        skips a replica whose dispatch would push cluster draw over the watt
        cap; ``power_busy`` charges a dispatched replica's busy draw into
        the power ledger.  Both default to None and the static paths never
        pass them.
        """
        replica_ids = range(self.num_replicas) if live is None else live
        for replica in replica_ids:
            if state.busy_until[replica] > now or lanes.pending == 0:
                continue
            if power_gate is not None and power_gate(now, replica):
                continue
            if self.max_batch_size == 1:
                # No batching: the head of the merged lanes is the batch,
                # unconditionally releasable.  O(log n).
                popped = lanes.pop_next(replica)
                if popped is None:
                    continue
                batch: Optional[List[_QueueItem]] = [items[popped[0][1]]]
                release_at: Optional[float] = None
            else:
                batch, release_at = self._select_batch(lanes, replica, items, now)
            if batch is None:
                if release_at is not None and release_at not in scheduled_timers:
                    scheduled_timers.add(release_at)
                    heapq.heappush(events, (release_at, _TIMER, replica))
                continue
            lanes.pending -= len(batch)
            for item in batch:
                if item.replica is not None:
                    state.queued_work[item.replica] -= item.service_s
            tenant = batch[0].request.tenant
            size = len(batch)
            # With dynamic batching enabled the dispatch size governs the
            # measurement; otherwise the workload's declared batch size does
            # (e.g. "my requests come pre-batched 8 deep"), which is exactly
            # what run_stream assumes — the single-replica equivalence holds
            # at any declared batch size.
            measure_at = (
                size
                if self.max_batch_size > 1
                else self.services[tenant].base_batch_size
            )
            measured = self.services[tenant].measurement(batch_size=measure_at)
            latencies = measured.latencies_s
            if factors is None:
                service_each = [
                    float(latencies[item.request.graph_index]) for item in batch
                ]
            else:
                # A degraded replica stretches service time (energy is the
                # work done, which does not change).
                factor = factors[replica]
                service_each = [
                    float(latencies[item.request.graph_index]) * factor
                    for item in batch
                ]
            finish = now
            for service_s in service_each:
                finish = finish + service_s
            service_total = finish - now
            state.busy_until[replica] = finish
            busy_time[replica] += service_total
            if power_busy is not None:
                power_busy(now, replica)
            sink.on_batch(size)
            heapq.heappush(events, (finish, _COMPLETION, replica))
            for item, service_s in zip(batch, service_each):
                sink.on_record(
                    item,
                    service_s=service_s,
                    energy_j=float(measured.energies_j[item.request.graph_index]),
                    start_s=now,
                    completion_s=finish,
                    replica=replica,
                    batch_size=size,
                )

    def _select_batch(
        self, lanes: "_Lanes", replica: int, items: List[_QueueItem], now: float
    ) -> Tuple[Optional[List[_QueueItem]], Optional[float]]:
        """The batch a free replica should start at ``now``, or when to retry.

        Scans the replica's merged lanes in policy order, popping entries
        into a buffer only as far as the decision requires: tenants are
        considered in first-appearance order, each owning the first
        ``max_batch_size`` of its requests, and the first tenant whose batch
        is *releasable* (full, or its oldest member has waited out the
        batching timeout) wins — so a held batch never blocks another
        tenant's ready work.  Everything scanned but not dispatched is
        pushed back.  Returns ``(batch, None)`` or
        ``(None, earliest release time)`` exactly like the reference
        implementation's full-sort walk.
        """
        max_batch = self.max_batch_size
        timeout = self.batch_timeout_s
        scanned: List[Tuple[Tuple, List]] = []   # (entry, source lane)
        order: List[str] = []                    # tenants, first-appearance order
        groups: Dict[str, List[_QueueItem]] = {}
        exhausted = False
        while True:
            winner: Optional[str] = None
            undecided = False
            for tenant in order:
                group = groups[tenant]
                if len(group) < max_batch and not exhausted:
                    # This tenant's batch may still grow; its releasability
                    # (and exact membership) is not yet decided, and no later
                    # tenant may be dispatched over it.
                    undecided = True
                    break
                oldest = min(item.request.arrival_s for item in group)
                if (
                    len(group) >= max_batch
                    or timeout == 0.0
                    or now >= oldest + timeout
                ):
                    winner = tenant
                    break
            if winner is not None:
                batch = groups[winner]
                chosen = {item.seq for item in batch}
                for entry, lane in scanned:
                    if entry[1] not in chosen:
                        heapq.heappush(lane, entry)
                return batch, None
            if exhausted and not undecided:
                if not order:
                    return None, None
                earliest: Optional[float] = None
                for tenant in order:
                    release = (
                        min(item.request.arrival_s for item in groups[tenant])
                        + timeout
                    )
                    if earliest is None or release < earliest:
                        earliest = release
                for entry, lane in scanned:
                    heapq.heappush(lane, entry)
                return None, earliest
            popped = lanes.pop_next(replica)
            if popped is None:
                exhausted = True
                continue
            entry, lane = popped
            scanned.append((entry, lane))
            item = items[entry[1]]
            tenant = item.request.tenant
            group = groups.get(tenant)
            if group is None:
                order.append(tenant)
                groups[tenant] = group = []
            if len(group) < max_batch:
                group.append(item)


@dataclass
class _Lanes:
    """Policy-ordered heaps of pending requests: one per replica + shared.

    A pinned request lives in its replica's lane; unpinned requests share
    one lane every replica merges with its own.  ``pending`` counts queued
    requests across all lanes (the admission-control bound and queue-depth
    trace read it).
    """

    shared: List[Tuple[Tuple, int]]
    per_replica: List[List[Tuple[Tuple, int]]]
    pending: int = 0

    def admit(self, item: _QueueItem, key: Tuple) -> None:
        lane = self.shared if item.replica is None else self.per_replica[item.replica]
        heapq.heappush(lane, (key, item.seq))
        self.pending += 1

    def pop_next(self, replica: int) -> Optional[Tuple[Tuple[Tuple, int], List]]:
        """Pop the policy-first entry among this replica's two lanes.

        Returns ``(entry, source_lane)`` so scanned-but-undispatched entries
        can be pushed back, or ``None`` when both lanes are empty.  Does not
        touch ``pending``: the caller owns the dispatch accounting.
        """
        own = self.per_replica[replica]
        shared = self.shared
        if own and shared:
            lane = own if own[0] < shared[0] else shared
        elif own:
            lane = own
        elif shared:
            lane = shared
        else:
            return None
        return heapq.heappop(lane), lane
