"""Autoscaling policies and adaptive admission for the dynamic cluster.

An :class:`Autoscaler` is consulted by :meth:`Cluster.serve` at fixed
``interval_s`` ticks on the event heap.  At each tick it sees an
:class:`AutoscalerMetrics` snapshot (queue depth, active/provisioning/busy
replica counts, arrivals and batch completions since the previous tick) and
answers one question: how many replicas *should* be rented.  The cluster
turns the answer into lifecycle transitions:

* scaling **up** appends fresh replicas in the ``provisioning`` state; they
  become dispatchable only ``provision_delay_s`` later (capacity is never
  free or instant);
* scaling **down** first cancels still-provisioning replicas, then drains
  active ones (newest first) — a draining replica finishes its in-flight
  batch, hands queued work back to the dispatch policy, and retires.  A
  scale-down decision is suppressed entirely until
  ``scale_down_hysteresis_s`` has passed since the last scale-up, so a
  flapping metric cannot thrash the pool.

Two built-in policies:

* :class:`ReactiveAutoscaler` — queue-depth watermarks plus an
  all-replicas-busy trigger; scales to whatever the backlog demands, shrinks
  one replica at a time.
* :class:`PredictiveAutoscaler` — EWMA arrival-rate estimation sized by
  ``rate x mean_service / target_utilisation`` (an M/M/k-style capacity
  rule); smooth under bursty arrivals at the cost of reacting a tick late.

Both are pure functions of the metrics sequence (the predictive policy's
EWMA state is reset at the start of every simulation), which is what lets
the dynamic-path oracle in :mod:`repro.serve.reference` replay a run
bit-identically.

:class:`AdmissionControl` is the load-shedding counterpart: consulted at
every arrival, it sheds requests when the queue is too deep or when the
backlog says the request cannot meet its deadline anyway (shed requests are
counted separately from capacity drops, and conservation —
``submitted == completed + dropped + shed`` — is a pinned invariant).

Carbon-aware extensions (both bound to the cluster's
:class:`~repro.serve.carbon.CarbonIntensity` trace at simulation start):

* :class:`CarbonWaitingAdmission` — holds *deferrable* tenants' requests
  while grid intensity is above ``carbon_threshold``, releasing them in
  earliest-due-date order when the grid gets clean or their deadline
  approaches (real-time tenants pass straight through, and held work is
  still counted as submitted — conservation is unchanged);
* :class:`CarbonSuspendAutoscaler` — a reactive autoscaler that parks the
  pool at ``min_replicas`` whenever intensity is above its threshold and
  resumes normal reactive scaling once the window passes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

__all__ = [
    "AutoscalerMetrics",
    "Autoscaler",
    "ReactiveAutoscaler",
    "PredictiveAutoscaler",
    "CarbonSuspendAutoscaler",
    "AdmissionControl",
    "CarbonWaitingAdmission",
    "AUTOSCALER_NAMES",
    "parse_autoscaler",
    "parse_admission",
]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .carbon import CarbonIntensity
    from .cluster import _QueueItem, _SimState

#: Registered autoscaler spec names (CLI choices and sweep grids).
AUTOSCALER_NAMES = ("reactive", "predictive", "carbon")


@dataclass(frozen=True)
class AutoscalerMetrics:
    """What an autoscaler sees at one tick."""

    now_s: float
    queue_depth: int                  # pending requests across all lanes
    active_replicas: int              # dispatchable now
    provisioning_replicas: int        # requested, not yet dispatchable
    busy_replicas: int                # active and mid-batch at the tick
    arrivals_since_last: int          # offered load (admitted, dropped, shed)
    batch_completions_since_last: int
    interval_s: float
    mean_service_s: float             # cluster mean batch-1 service time

    @property
    def target_replicas(self) -> int:
        """What is currently rented: active plus still-provisioning."""
        return self.active_replicas + self.provisioning_replicas


class Autoscaler(ABC):
    """Decide the rented replica count from per-tick metrics.

    Subclasses implement :meth:`desired_replicas`; the cluster clamps the
    answer into ``[min_replicas, max_replicas]`` and applies provisioning
    latency and scale-down hysteresis, so a policy only ever reasons about
    the metrics, never about actuation.
    """

    name: str = "abstract"

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 8,
        interval_s: float = 2e-3,
        provision_delay_s: float = 4e-3,
        scale_down_hysteresis_s: float = 10e-3,
    ) -> None:
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if provision_delay_s < 0:
            raise ValueError("provision_delay_s must be >= 0")
        if scale_down_hysteresis_s < 0:
            raise ValueError("scale_down_hysteresis_s must be >= 0")
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.interval_s = float(interval_s)
        self.provision_delay_s = float(provision_delay_s)
        self.scale_down_hysteresis_s = float(scale_down_hysteresis_s)

    def reset(self) -> None:
        """Called at the start of every simulation (clear estimator state)."""

    def bind_carbon(self, trace: "Optional[CarbonIntensity]") -> None:
        """Receive the cluster's carbon trace at simulation start (no-op here)."""

    @abstractmethod
    def desired_replicas(self, metrics: AutoscalerMetrics) -> int:
        """How many replicas should be rented, given ``metrics``."""

    def describe(self) -> str:
        return (
            f"{self.name}(min={self.min_replicas}, max={self.max_replicas}, "
            f"interval={self.interval_s:g}s, delay={self.provision_delay_s:g}s, "
            f"hysteresis={self.scale_down_hysteresis_s:g}s)"
        )


class ReactiveAutoscaler(Autoscaler):
    """Queue-depth watermarks plus an all-busy trigger.

    Scale up to ``ceil(queue / high_queue_per_replica)`` when the backlog
    per rented replica crosses the high watermark (or by one replica when
    every active replica is busy and work is still queued); scale down one
    replica when the backlog per replica falls below the low watermark and
    at least one active replica is idle.
    """

    name = "reactive"

    def __init__(
        self,
        high_queue_per_replica: float = 4.0,
        low_queue_per_replica: float = 1.0,
        busy_fraction: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if high_queue_per_replica <= 0:
            raise ValueError("high_queue_per_replica must be > 0")
        if not 0 <= low_queue_per_replica <= high_queue_per_replica:
            raise ValueError(
                "low_queue_per_replica must be in [0, high_queue_per_replica]"
            )
        if not 0 < busy_fraction <= 1:
            raise ValueError("busy_fraction must be in (0, 1]")
        self.high_queue_per_replica = float(high_queue_per_replica)
        self.low_queue_per_replica = float(low_queue_per_replica)
        self.busy_fraction = float(busy_fraction)

    def desired_replicas(self, metrics: AutoscalerMetrics) -> int:
        target = metrics.target_replicas
        if target <= 0:
            # Nothing rented at all (e.g. every replica crashed): size the
            # pool straight from the backlog.
            return max(
                self.min_replicas,
                int(math.ceil(metrics.queue_depth / self.high_queue_per_replica)),
            )
        per_replica = metrics.queue_depth / target
        if per_replica > self.high_queue_per_replica:
            return int(math.ceil(metrics.queue_depth / self.high_queue_per_replica))
        busy = (
            metrics.busy_replicas / metrics.active_replicas
            if metrics.active_replicas
            else 1.0
        )
        if metrics.queue_depth > 0 and busy >= self.busy_fraction:
            return target + 1
        if (
            per_replica < self.low_queue_per_replica
            and metrics.busy_replicas < metrics.active_replicas
        ):
            return target - 1
        return target


class PredictiveAutoscaler(Autoscaler):
    """EWMA arrival-rate estimation sized by a utilisation target.

    The estimator smooths the observed per-tick arrival rate with factor
    ``smoothing`` and demands ``ceil(rate x mean_service /
    target_utilisation)`` replicas.  State lives only inside one simulation:
    :meth:`reset` clears the EWMA, so replays are bit-identical.
    """

    name = "predictive"

    def __init__(
        self,
        target_utilisation: float = 0.7,
        smoothing: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 < target_utilisation <= 1:
            raise ValueError("target_utilisation must be in (0, 1]")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.target_utilisation = float(target_utilisation)
        self.smoothing = float(smoothing)
        self._rate_rps: Optional[float] = None

    def reset(self) -> None:
        self._rate_rps = None

    def desired_replicas(self, metrics: AutoscalerMetrics) -> int:
        observed = metrics.arrivals_since_last / metrics.interval_s
        if self._rate_rps is None:
            rate = observed
        else:
            rate = self.smoothing * observed + (1.0 - self.smoothing) * self._rate_rps
        self._rate_rps = rate
        if metrics.mean_service_s <= 0.0:
            return metrics.target_replicas
        return int(math.ceil(rate * metrics.mean_service_s / self.target_utilisation))


class CarbonSuspendAutoscaler(ReactiveAutoscaler):
    """Suspend/resume scaling around high-carbon windows.

    While grid intensity is above ``carbon_threshold`` the pool is parked at
    ``min_replicas`` (replicas drain and retire through the normal lifecycle,
    so in-flight batches still finish); once the window passes the policy
    resumes plain reactive scaling.  Without a bound carbon trace it behaves
    exactly like :class:`ReactiveAutoscaler`.
    """

    name = "carbon"

    def __init__(self, carbon_threshold: float = 400.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if carbon_threshold < 0:
            raise ValueError("carbon_threshold must be >= 0")
        self.carbon_threshold = float(carbon_threshold)
        self._trace: "Optional[CarbonIntensity]" = None

    def bind_carbon(self, trace: "Optional[CarbonIntensity]") -> None:
        self._trace = trace

    def desired_replicas(self, metrics: AutoscalerMetrics) -> int:
        if (
            self._trace is not None
            and self._trace.intensity_at(metrics.now_s) > self.carbon_threshold
        ):
            return self.min_replicas
        return super().desired_replicas(metrics)

    def describe(self) -> str:
        return super().describe()[:-1] + f", threshold={self.carbon_threshold:g})"


@dataclass(frozen=True)
class AdmissionControl:
    """Load-shedding thresholds applied to every arrival.

    ``max_queue_depth`` sheds when the cluster backlog is already that
    deep (a cheaper, adaptive cousin of the hard ``queue_capacity`` drop).
    ``deadline_headroom`` sheds a deadline-carrying request whose predicted
    completion — mean outstanding work per live replica plus its own
    service time — exceeds ``headroom x deadline``; best-effort requests
    are never deadline-shed.  Shedding happens before the queue-capacity
    check, and shed requests are counted separately from drops.
    """

    max_queue_depth: Optional[int] = None
    deadline_headroom: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is None and self.deadline_headroom is None:
            raise ValueError(
                "AdmissionControl needs max_queue_depth and/or deadline_headroom"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.deadline_headroom is not None and self.deadline_headroom <= 0:
            raise ValueError("deadline_headroom must be > 0")

    def should_shed(self, item: "_QueueItem", pending: int, state: "_SimState") -> bool:
        """Whether to shed ``item`` given ``pending`` queued requests."""
        if self.max_queue_depth is not None and pending >= self.max_queue_depth:
            return True
        if self.deadline_headroom is not None:
            deadline = item.request.absolute_deadline_s
            if deadline != math.inf:
                live = state.live
                if not live:
                    return True
                backlog = 0.0
                for replica in live:
                    backlog += (
                        max(state.busy_until[replica] - state.now, 0.0)
                        + state.queued_work[replica]
                    )
                predicted = item.service_s + backlog / len(live)
                budget = self.deadline_headroom * (deadline - item.request.arrival_s)
                if predicted > budget:
                    return True
        return False

    def describe(self) -> str:
        parts = []
        if self.max_queue_depth is not None:
            parts.append(f"queue={self.max_queue_depth}")
        if self.deadline_headroom is not None:
            parts.append(f"headroom={self.deadline_headroom:g}")
        return "admission(" + ",".join(parts) + ")"


@dataclass(frozen=True)
class CarbonWaitingAdmission(AdmissionControl):
    """Hold deferrable work for clean-grid windows (carbon_waiting policy).

    At every arrival from a ``deferrable`` tenant, if grid intensity is
    above ``carbon_threshold`` the request is *held* instead of queued.
    Held requests are released in earliest-due-date order as soon as the
    grid is clean again — or unconditionally once the release point
    ``deadline - release_headroom × service_time`` arrives, so a clean
    window never has to show up for a deadline to be met.  Best-effort
    deferrable requests (no deadline) wait for the next clean window.

    Real-time tenants are never held, and the inherited shedding knobs
    (``max_queue_depth`` / ``deadline_headroom``) still apply to whatever
    is actually queued — both may be ``None`` here, unlike the base class.
    """

    carbon_threshold: float = 400.0
    release_headroom: float = 2.0

    def __post_init__(self) -> None:
        # Unlike the base class, pure carbon-holding with no shedding knobs
        # is a valid configuration, so the base "needs max_queue_depth
        # and/or deadline_headroom" check is deliberately not inherited.
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.deadline_headroom is not None and self.deadline_headroom <= 0:
            raise ValueError("deadline_headroom must be > 0")
        if self.carbon_threshold < 0:
            raise ValueError("carbon_threshold must be >= 0")
        if self.release_headroom < 0:
            raise ValueError("release_headroom must be >= 0")

    def release_at_s(self, deadline_s: float, service_s: float) -> float:
        """Latest time a held request may wait before it must be queued."""
        if deadline_s == math.inf:
            return math.inf
        return deadline_s - self.release_headroom * service_s

    def describe(self) -> str:
        parts = [
            f"threshold={self.carbon_threshold:g}",
            f"release={self.release_headroom:g}",
        ]
        if self.max_queue_depth is not None:
            parts.append(f"queue={self.max_queue_depth}")
        if self.deadline_headroom is not None:
            parts.append(f"headroom={self.deadline_headroom:g}")
        return "carbon_waiting(" + ",".join(parts) + ")"


_COMMON_KEYS = {
    "min": ("min_replicas", int),
    "max": ("max_replicas", int),
    "interval": ("interval_s", float),
    "delay": ("provision_delay_s", float),
    "hysteresis": ("scale_down_hysteresis_s", float),
}

_REACTIVE_KEYS = {
    "high": ("high_queue_per_replica", float),
    "low": ("low_queue_per_replica", float),
    "busy": ("busy_fraction", float),
}

_PREDICTIVE_KEYS = {
    "util": ("target_utilisation", float),
    "smooth": ("smoothing", float),
}

_CARBON_KEYS = {
    **_REACTIVE_KEYS,
    "threshold": ("carbon_threshold", float),
}


def parse_autoscaler(text: str) -> Autoscaler:
    """Parse ``NAME[:k=v,...]`` into an autoscaler instance.

    Shared keys: ``min``, ``max``, ``interval``, ``delay``, ``hysteresis``.
    ``reactive`` adds ``high``/``low`` (queue-per-replica watermarks) and
    ``busy`` (all-busy trigger fraction); ``predictive`` adds ``util``
    (target utilisation) and ``smooth`` (EWMA factor); ``carbon`` takes the
    reactive keys plus ``threshold`` (gCO2/kWh above which the pool parks
    at ``min``).  Examples::

        reactive
        reactive:min=1,max=8,interval=0.002,delay=0.004,high=4,low=1
        predictive:util=0.7,smooth=0.5,hysteresis=0.01
        carbon:threshold=400,min=1,max=8
    """
    text = text.strip()
    name, _, params_text = text.partition(":")
    name = name.strip().lower()
    if name == "reactive":
        keys = {**_COMMON_KEYS, **_REACTIVE_KEYS}
        factory = ReactiveAutoscaler
    elif name == "predictive":
        keys = {**_COMMON_KEYS, **_PREDICTIVE_KEYS}
        factory = PredictiveAutoscaler
    elif name == "carbon":
        keys = {**_COMMON_KEYS, **_CARBON_KEYS}
        factory = CarbonSuspendAutoscaler
    else:
        raise ValueError(
            f"unknown autoscaler {name!r}; expected one of {AUTOSCALER_NAMES}"
        )
    kwargs = {}
    for pair in params_text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq or key not in keys:
            raise ValueError(
                f"unknown {name} autoscaler parameter {pair!r}; "
                f"expected one of {sorted(keys)}"
            )
        attr, cast = keys[key]
        kwargs[attr] = cast(float(value))
    return factory(**kwargs)


def parse_admission(text: str) -> AdmissionControl:
    """Parse an admission spec.

    Two forms::

        queue=64,headroom=2.5                       -> AdmissionControl
        carbon_waiting:threshold=400,release=2       -> CarbonWaitingAdmission

    The ``carbon_waiting`` form also accepts the shedding keys ``queue``
    and ``headroom``, applied to whatever is actually queued.
    """
    text = text.strip()
    if text == "carbon_waiting" or text.startswith("carbon_waiting:"):
        params_text = text.partition(":")[2]
        kwargs: dict = {}
        for pair in params_text.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq:
                raise ValueError(
                    f"cannot parse admission parameter {pair!r}; expected k=v"
                )
            if key == "threshold":
                kwargs["carbon_threshold"] = float(value)
            elif key == "release":
                kwargs["release_headroom"] = float(value)
            elif key == "queue":
                kwargs["max_queue_depth"] = int(float(value))
            elif key == "headroom":
                kwargs["deadline_headroom"] = float(value)
            else:
                raise ValueError(
                    f"unknown carbon_waiting parameter {key!r}; "
                    f"expected threshold/release/queue/headroom"
                )
        return CarbonWaitingAdmission(**kwargs)
    max_queue_depth: Optional[int] = None
    deadline_headroom: Optional[float] = None
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq:
            raise ValueError(f"cannot parse admission parameter {pair!r}; expected k=v")
        if key == "queue":
            max_queue_depth = int(float(value))
        elif key == "headroom":
            deadline_headroom = float(value)
        else:
            raise ValueError(
                f"unknown admission parameter {key!r}; expected queue/headroom"
            )
    return AdmissionControl(
        max_queue_depth=max_queue_depth, deadline_headroom=deadline_headroom
    )
