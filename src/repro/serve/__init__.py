"""Multi-tenant serving simulator: many request streams, a pool of replicas.

The paper motivates FlowGNN with *real-time* traffic — HEP triggers and
recommendation streams with per-request deadlines.  This package scales the
single-stream evaluation (:meth:`Backend.run_stream`) to a serving cluster::

    from repro.serve import Workload, LoadGenerator, Cluster

    tenants = [
        Workload("trigger", model="GIN", dataset="HEP", num_graphs=8,
                 deadline_s=500e-6, priority=1, share=2.0),
        Workload("recsys", model="GCN", dataset="MolHIV", num_graphs=8,
                 deadline_s=5e-3),
    ]
    cluster = Cluster(tenants, backend="flowgnn", num_replicas=4, policy="edf")
    load = LoadGenerator.poisson(tenants, total_rate_rps=20_000, seed=0)
    report = cluster.serve(load.generate(duration_s=0.05), duration_s=0.05)
    print(report.summary())
    print(report.to_json())

* :class:`Workload` — per-tenant spec (model, dataset, deadline, priority,
  traffic share), eagerly validated via :class:`~repro.api.InferenceRequest`;
* :class:`LoadGenerator` + arrival processes (:class:`PoissonArrivals`,
  bursty :class:`OnOffArrivals`, day/night :class:`DiurnalArrivals`,
  :class:`ConstantArrivals`, :class:`TraceArrivals` CSV replay) — seeded,
  bit-reproducible;
* :class:`Cluster` — event-driven multiplexing over replicated backends
  with swappable dispatch policies (``round_robin`` / ``least_loaded`` /
  SLO-aware ``edf``) and dynamic batching (``max_batch_size``,
  ``batch_timeout_s``);
* :class:`ServingReport` — per-tenant :class:`~repro.api.InferenceReport`s
  plus cluster utilisation, drops, batch sizes and the queue-depth trace;
* dynamic clusters — :class:`Autoscaler` policies (reactive / predictive /
  carbon-suspending, with provisioning latency and scale-down hysteresis),
  :class:`FaultSchedule` crash/degrade injection, and
  :class:`AdmissionControl` load shedding, all replayed bit-identically by
  the :func:`reference_serve_dynamic` oracle;
* energy and carbon — a per-replica :class:`PowerModel` integrated over the
  replica lifecycle into ``ServingReport.energy_j``, a
  :class:`CarbonIntensity` grid trace charging ``carbon_gco2``, the
  ``carbon_waiting`` admission holding deferrable tenants for cleaner
  windows, and ``power_cap_w`` clamping dispatch under a watt budget.

Per-replica timing reuses the backends' measurement pass (and therefore the
FlowGNN schedule cache and :class:`~repro.graph.GraphStream` statistics), so
a one-replica, no-batching cluster reproduces ``run_stream`` bit for bit.
"""

from .arrivals import (
    STREAM_CHUNK,
    ArrivalProcess,
    ConstantArrivals,
    DiurnalArrivals,
    LoadGenerator,
    OnOffArrivals,
    PoissonArrivals,
    RequestBlock,
    ServingRequest,
    TraceArrivals,
)
from .cluster import (
    Cluster,
    DispatchPolicy,
    EarliestDeadlinePolicy,
    LeastLoadedPolicy,
    POLICY_NAMES,
    RoundRobinPolicy,
    TenantService,
    get_policy,
    register_policy,
)
from .autoscale import (
    AUTOSCALER_NAMES,
    AdmissionControl,
    Autoscaler,
    AutoscalerMetrics,
    CarbonSuspendAutoscaler,
    CarbonWaitingAdmission,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    parse_admission,
    parse_autoscaler,
)
from .carbon import CarbonIntensity, parse_carbon_trace
from .faults import FAULT_ACTIONS, FaultEvent, FaultSchedule, parse_fault_schedule
from .power import PowerModel, parse_power_model
from .reference import reference_serve, reference_serve_dynamic
from .report import ServingRecord, ServingReport, SketchTenantReport, TenantOutcome
from .sketches import (
    LatencySketch,
    P2Quantile,
    QuantileSketch,
    StreamingHistogram,
    StreamingMoments,
    sketch_nbytes,
)
from .workload import TENANT_CLASSES, Workload

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "TraceArrivals",
    "LoadGenerator",
    "ServingRequest",
    "Workload",
    "Cluster",
    "DispatchPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "EarliestDeadlinePolicy",
    "POLICY_NAMES",
    "get_policy",
    "register_policy",
    "TenantService",
    "ServingRecord",
    "ServingReport",
    "SketchTenantReport",
    "TenantOutcome",
    "reference_serve",
    "reference_serve_dynamic",
    "Autoscaler",
    "ReactiveAutoscaler",
    "PredictiveAutoscaler",
    "CarbonSuspendAutoscaler",
    "AutoscalerMetrics",
    "AUTOSCALER_NAMES",
    "parse_autoscaler",
    "AdmissionControl",
    "CarbonWaitingAdmission",
    "parse_admission",
    "CarbonIntensity",
    "parse_carbon_trace",
    "PowerModel",
    "parse_power_model",
    "TENANT_CLASSES",
    "FaultEvent",
    "FaultSchedule",
    "FAULT_ACTIONS",
    "parse_fault_schedule",
    "RequestBlock",
    "STREAM_CHUNK",
    "StreamingMoments",
    "P2Quantile",
    "QuantileSketch",
    "StreamingHistogram",
    "LatencySketch",
    "sketch_nbytes",
]
