"""Piecewise-constant carbon-intensity traces for the serving cluster.

A :class:`CarbonIntensity` maps simulation time to grid carbon intensity in
grams of CO2 per kWh.  The trace is piecewise constant — segment ``i`` holds
``intensities[i]`` from ``times_s[i]`` until ``times_s[i + 1]`` (the last
segment holds forever, or the whole trace repeats every ``period_s`` seconds
when a period is given).  Traces are plain frozen data, mirroring
:class:`~repro.serve.arrivals.TraceArrivals`: building one never touches a
random generator, and the same trace replayed against the same cluster
produces a bit-identical :class:`~repro.serve.ServingReport` (pinned by the
naive integrator in :mod:`repro.serve.reference`).

The cluster charges carbon as ``gco2 = ∫ power(t) × intensity(t) dt``; since
replica power is itself piecewise constant between event instants, the
integral reduces to exact segment sums — no quadrature, no tolerance.

Three textual forms, accepted by :meth:`CarbonIntensity.parse` (and the
``repro serve --carbon-trace`` / ``repro plan --carbon-traces`` flags):

* ``diurnal`` or ``diurnal:low=100,high=700,period=0.02,steps=24`` — a
  half-cosine day/night cycle sampled at segment midpoints (dirty at the
  start of each period, cleanest half-way through);
* ``constant:420`` — a flat intensity;
* ``trace:PATH`` — CSV replay with ``time_s`` and ``intensity`` columns,
  mirroring the arrival-trace CSV idiom.
"""

from __future__ import annotations

import bisect
import csv
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["CarbonIntensity", "parse_carbon_trace", "J_PER_KWH"]

#: Joules per kilowatt-hour — converts ``∫ intensity dt`` (g·s/kWh) into
#: grams per joule of energy drawn.
J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class CarbonIntensity:
    """An immutable piecewise-constant carbon-intensity trace (gCO2/kWh)."""

    times_s: Tuple[float, ...]
    intensities: Tuple[float, ...]
    period_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "times_s", tuple(float(t) for t in self.times_s))
        object.__setattr__(
            self, "intensities", tuple(float(v) for v in self.intensities)
        )
        if not self.times_s:
            raise ValueError("carbon trace needs at least one segment")
        if len(self.times_s) != len(self.intensities):
            raise ValueError(
                f"carbon trace has {len(self.times_s)} times but "
                f"{len(self.intensities)} intensities"
            )
        if self.times_s[0] != 0.0:
            raise ValueError("carbon trace must start at time 0.0")
        for earlier, later in zip(self.times_s, self.times_s[1:]):
            if later <= earlier:
                raise ValueError("carbon trace times must be strictly ascending")
        for value in self.intensities:
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"carbon intensity must be finite and >= 0, got {value}")
        if self.period_s is not None:
            if self.period_s <= self.times_s[-1]:
                raise ValueError(
                    f"period_s {self.period_s} must exceed the last segment start "
                    f"{self.times_s[-1]}"
                )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: float) -> "CarbonIntensity":
        """A flat trace at ``value`` gCO2/kWh."""
        return cls(times_s=(0.0,), intensities=(float(value),))

    @classmethod
    def diurnal(
        cls,
        low: float = 100.0,
        high: float = 700.0,
        period_s: float = 0.02,
        steps: int = 24,
    ) -> "CarbonIntensity":
        """A repeating half-cosine day/night profile.

        Intensity starts at ``high`` (dirty grid at the period boundary),
        dips to ``low`` half-way through the period (solar noon) and climbs
        back — each of the ``steps`` equal segments holds the cosine value
        sampled at its midpoint.  The defaults are scaled to the simulator's
        millisecond-horizon scenarios; pass ``period_s=86400`` for wall-clock
        day traces.
        """
        if steps < 1:
            raise ValueError("diurnal trace needs steps >= 1")
        if period_s <= 0:
            raise ValueError("diurnal trace needs period_s > 0")
        if low < 0 or high < low:
            raise ValueError("diurnal trace needs 0 <= low <= high")
        times: List[float] = []
        values: List[float] = []
        for i in range(steps):
            times.append(period_s * i / steps)
            mid = (i + 0.5) / steps
            values.append(low + (high - low) * 0.5 * (1.0 + math.cos(2.0 * math.pi * mid)))
        return cls(times_s=tuple(times), intensities=tuple(values), period_s=period_s)

    @classmethod
    def from_csv(
        cls,
        path: str,
        time_column: str = "time_s",
        intensity_column: str = "intensity",
        period_s: Optional[float] = None,
    ) -> "CarbonIntensity":
        """Load a trace from a CSV with ``time_s`` and ``intensity`` columns."""
        times: List[float] = []
        values: List[float] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or time_column not in reader.fieldnames:
                raise ValueError(f"carbon CSV {path!r} has no {time_column!r} column")
            if intensity_column not in reader.fieldnames:
                raise ValueError(
                    f"carbon CSV {path!r} has no {intensity_column!r} column"
                )
            for row in reader:
                times.append(float(row[time_column]))
                values.append(float(row[intensity_column]))
        if not times:
            raise ValueError(f"carbon CSV {path!r} has no rows")
        return cls(times_s=tuple(times), intensities=tuple(values), period_s=period_s)

    @classmethod
    def parse(cls, text: str) -> "CarbonIntensity":
        """Parse the textual trace forms (see the module docstring)."""
        text = text.strip()
        if not text:
            raise ValueError("empty carbon trace")
        name, _, rest = text.partition(":")
        name = name.strip().lower()
        if name == "diurnal":
            known = {"low": 100.0, "high": 700.0, "period": 0.02, "steps": 24.0}
            for pair in rest.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, eq, value = pair.partition("=")
                key = key.strip()
                if not eq or key not in known:
                    raise ValueError(
                        f"cannot parse diurnal parameter {pair!r}; "
                        f"expected one of {sorted(known)} as k=v"
                    )
                known[key] = float(value)
            return cls.diurnal(
                low=known["low"],
                high=known["high"],
                period_s=known["period"],
                steps=int(known["steps"]),
            )
        if name == "constant":
            if not rest:
                raise ValueError("constant carbon trace needs a value, e.g. constant:420")
            return cls.constant(float(rest))
        if name == "trace":
            if not rest:
                raise ValueError("carbon trace replay needs a path, e.g. trace:grid.csv")
            return cls.from_csv(rest)
        raise ValueError(
            f"unknown carbon trace {text!r}; expected diurnal[:k=v,...], "
            f"constant:VALUE or trace:PATH"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _phase(self, t: float) -> float:
        """Fold ``t`` into the trace's fundamental period (identity when aperiodic)."""
        if self.period_s is None:
            return t
        return t % self.period_s

    def intensity_at(self, t: float) -> float:
        """Intensity (gCO2/kWh) in force at time ``t`` (t >= 0)."""
        phase = self._phase(t)
        index = bisect.bisect_right(self.times_s, phase) - 1
        if index < 0:
            index = 0
        return self.intensities[index]

    def integral(self, t0: float, t1: float) -> float:
        """``∫ intensity dt`` over ``[t0, t1]`` in g·s/kWh (exact segment sums)."""
        if t1 <= t0:
            return 0.0
        if self.period_s is None:
            return self._integral_aperiodic(t0, t1)
        period = self.period_s
        whole = self._integral_aperiodic(0.0, period)
        n0 = math.floor(t0 / period)
        n1 = math.floor(t1 / period)
        if n0 == n1:
            return self._integral_aperiodic(t0 - n0 * period, t1 - n0 * period)
        total = self._integral_aperiodic(t0 - n0 * period, period)
        total += whole * (n1 - n0 - 1)
        total += self._integral_aperiodic(0.0, t1 - n1 * period)
        return total

    def _integral_aperiodic(self, t0: float, t1: float) -> float:
        """Segment-sum integral treating the trace as non-repeating."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        times = self.times_s
        for i, value in enumerate(self.intensities):
            start = times[i]
            end = times[i + 1] if i + 1 < len(times) else math.inf
            lo = t0 if t0 > start else start
            hi = t1 if t1 < end else end
            if hi > lo:
                total += value * (hi - lo)
        return total

    def integral_g_per_j(self, t0: float, t1: float) -> float:
        """``∫ intensity dt`` converted to grams of CO2 per watt of draw.

        Multiplying by a constant power (W = J/s) over ``[t0, t1]`` yields
        grams: ``g = P × ∫ intensity dt / J_PER_KWH``.
        """
        return self.integral(t0, t1) / J_PER_KWH

    def next_below_s(self, threshold: float, after: float) -> float:
        """Earliest time >= ``after`` with intensity <= ``threshold`` (inf if never).

        The returned time satisfies ``intensity_at(returned) <= threshold``
        *as evaluated* — reconstructing a segment boundary through ``after +
        (start - phase)`` can land an ulp short of where ``t % period`` puts
        the boundary, so the candidate is nudged up by ulps until the lookup
        agrees.  Callers schedule wake-ups at this time and re-check the
        intensity then; without the nudge a wake-up could observe the dirty
        segment it was meant to escape.
        """
        phase = self._phase(after)
        times = self.times_s
        values = self.intensities
        index = bisect.bisect_right(times, phase) - 1
        if index < 0:
            index = 0
        if values[index] <= threshold:
            return after
        count = len(values)
        candidate: Optional[float] = None
        if self.period_s is None:
            for i in range(index + 1, count):
                if values[i] <= threshold:
                    candidate = after + (times[i] - phase)
                    break
        else:
            for step in range(1, count + 1):
                i = (index + step) % count
                start = times[i] if i > index else times[i] + self.period_s
                if values[i] <= threshold:
                    candidate = after + (start - phase)
                    break
        if candidate is None:
            return math.inf
        while self.intensity_at(candidate) > threshold:
            candidate = math.nextafter(candidate, math.inf)
        return candidate

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def min_intensity(self) -> float:
        return min(self.intensities)

    @property
    def max_intensity(self) -> float:
        return max(self.intensities)

    def describe(self) -> str:
        period = f", period={self.period_s:g}s" if self.period_s is not None else ""
        return (
            f"CarbonIntensity({len(self.intensities)} segments, "
            f"{self.min_intensity:g}-{self.max_intensity:g} gCO2/kWh{period})"
        )


def parse_carbon_trace(text: str) -> CarbonIntensity:
    """Module-level alias for :meth:`CarbonIntensity.parse` (CLI entry point)."""
    return CarbonIntensity.parse(text)
