"""The pre-optimisation serving loop, kept as the correctness baseline.

:func:`reference_serve` is the event-driven simulation exactly as it shipped
before the heap-lane dispatcher: one full policy-order sort of the queue per
event instant, linear ``list.remove`` on dispatch.  It is O(n^2 log n) on a
deep queue and exists for the same reason :func:`repro.dse.naive_sweep`
does — so benchmarks and tests can assert the optimised
:meth:`Cluster.serve` is **bit-identical** (same :class:`ServingReport`,
record for record) while being several times faster
(``benchmarks/test_serve_speedup.py``).

Do not "fix" or optimise this module: its value is that it never changes.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from .arrivals import ServingRequest
from .cluster import _ARRIVAL, _COMPLETION, _TIMER, _QueueItem, _SimState
from .report import ServingRecord, ServingReport, assemble_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster

__all__ = ["reference_serve", "assert_reports_identical"]


def assert_reports_identical(candidate: ServingReport, reference: ServingReport) -> None:
    """Assert two serving reports are bit-identical, field by field.

    "Bit-identical" means exactly that: every record, every per-tenant
    latency/energy array, the utilisation vector, the queue-depth trace and
    the JSON serialisation must match with ``==`` / ``array_equal`` — no
    tolerances.  This is the contract the optimised dispatcher owes the
    reference implementation.
    """
    assert candidate.to_json() == reference.to_json()
    assert candidate.records == reference.records
    assert candidate.dropped_requests == reference.dropped_requests
    assert np.array_equal(
        candidate.per_replica_utilisation, reference.per_replica_utilisation
    )
    assert np.array_equal(candidate.batch_sizes, reference.batch_sizes)
    assert np.array_equal(candidate.queue_depth_times_s, reference.queue_depth_times_s)
    assert np.array_equal(candidate.queue_depth_trace, reference.queue_depth_trace)
    assert candidate.horizon_s == reference.horizon_s
    assert set(candidate.tenants) == set(reference.tenants)
    for tenant, outcome in candidate.tenants.items():
        expected = reference.tenants[tenant]
        assert (outcome.submitted, outcome.completed, outcome.dropped) == (
            expected.submitted,
            expected.completed,
            expected.dropped,
        )
        report, expected_report = outcome.report, expected.report
        assert np.array_equal(
            report.per_graph_latency_ms, expected_report.per_graph_latency_ms
        )
        assert np.array_equal(
            report.per_graph_energy_mj, expected_report.per_graph_energy_mj
        )
        assert np.array_equal(
            report.stream_statistics.per_graph_latency_s,
            expected_report.stream_statistics.per_graph_latency_s,
        )
        assert np.array_equal(
            report.stream_statistics.completion_times_s,
            expected_report.stream_statistics.completion_times_s,
        )
        assert np.array_equal(
            report.stream_statistics.queue_depth_trace,
            expected_report.stream_statistics.queue_depth_trace,
        )
        assert report.extras == expected_report.extras


def reference_serve(
    cluster: "Cluster",
    requests: Sequence[ServingRequest],
    duration_s: Optional[float] = None,
) -> ServingReport:
    """Run the pre-optimisation simulation loop on ``cluster``.

    Accepts the same arguments as :meth:`Cluster.serve` and must produce a
    bit-identical report.
    """
    policy = cluster.policy
    policy.reset(cluster.num_replicas)
    for request in requests:
        if request.tenant not in cluster.services:
            raise ValueError(f"request for unknown tenant {request.tenant!r}")
    items = [
        _QueueItem(
            request=request,
            seq=seq,
            service_s=cluster.services[request.tenant].service_s(
                request.graph_index,
                batch_size=cluster.services[request.tenant].base_batch_size,
            ),
        )
        for seq, request in enumerate(
            sorted(requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index))
        )
    ]

    state = _SimState(
        busy_until=[0.0] * cluster.num_replicas,
        queued_work=[0.0] * cluster.num_replicas,
    )
    busy_time = [0.0] * cluster.num_replicas
    queue: List[_QueueItem] = []
    records: List[ServingRecord] = []
    dropped: List[ServingRequest] = []
    batch_sizes: List[int] = []
    trace_times: List[float] = []
    trace_depths: List[int] = []
    scheduled_timers: set = set()

    events: List[Tuple[float, int, int]] = [
        (item.request.arrival_s, _ARRIVAL, item.seq) for item in items
    ]
    heapq.heapify(events)

    while events:
        now = events[0][0]
        state.now = now
        while events and events[0][0] == now:
            _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                item = items[payload]
                if (
                    cluster.queue_capacity is not None
                    and len(queue) >= cluster.queue_capacity
                ):
                    dropped.append(item.request)
                else:
                    item.replica = policy.assign(item, state)
                    if item.replica is not None:
                        state.queued_work[item.replica] += item.service_s
                    queue.append(item)
        trace_times.append(now)
        trace_depths.append(len(queue))
        _dispatch(
            cluster, now, state, queue, busy_time, records, batch_sizes,
            events, scheduled_timers,
        )

    assert not queue, "simulation ended with requests still queued"
    return assemble_report(
        cluster=cluster,
        records=records,
        dropped=dropped,
        busy_time=busy_time,
        batch_sizes=batch_sizes,
        trace_times=np.array(trace_times, dtype=np.float64),
        trace_depths=np.array(trace_depths, dtype=np.int64),
        duration_s=duration_s,
    )


def _dispatch(
    cluster: "Cluster",
    now: float,
    state: _SimState,
    queue: List[_QueueItem],
    busy_time: List[float],
    records: List[ServingRecord],
    batch_sizes: List[int],
    events: List[Tuple[float, int, int]],
    scheduled_timers: set,
) -> None:
    """Start work on every replica that is free at ``now`` (full-sort path)."""
    ordered = sorted(
        queue, key=lambda item: cluster.policy.order_key(item) + (item.seq,)
    )
    taken: set = set()
    for replica in range(cluster.num_replicas):
        if state.busy_until[replica] > now or len(taken) == len(ordered):
            continue
        eligible = [
            item
            for item in ordered
            if item.seq not in taken
            and (item.replica is None or item.replica == replica)
        ]
        batch, release_at = _select_batch(cluster, eligible, now)
        if batch is None:
            if release_at is not None and release_at not in scheduled_timers:
                scheduled_timers.add(release_at)
                heapq.heappush(events, (release_at, _TIMER, replica))
            continue
        for item in batch:
            taken.add(item.seq)
            queue.remove(item)
            if item.replica is not None:
                state.queued_work[item.replica] -= item.service_s
        tenant = batch[0].request.tenant
        size = len(batch)
        measure_at = (
            size
            if cluster.max_batch_size > 1
            else cluster.services[tenant].base_batch_size
        )
        measured = cluster.services[tenant].measurement(batch_size=measure_at)
        latencies = measured.latencies_s
        finish = now
        for item in batch:
            finish = finish + float(latencies[item.request.graph_index])
        service_total = finish - now
        state.busy_until[replica] = finish
        busy_time[replica] += service_total
        batch_sizes.append(size)
        heapq.heappush(events, (finish, _COMPLETION, replica))
        for item in batch:
            records.append(
                ServingRecord(
                    request=item.request,
                    service_s=float(latencies[item.request.graph_index]),
                    energy_j=float(measured.energies_j[item.request.graph_index]),
                    start_s=now,
                    completion_s=finish,
                    replica=replica,
                    batch_size=size,
                )
            )


def _select_batch(
    cluster: "Cluster", eligible: List[_QueueItem], now: float
) -> Tuple[Optional[List[_QueueItem]], Optional[float]]:
    """The batch a free replica should start at ``now``, or when to retry."""
    if not eligible:
        return None, None
    earliest_release: Optional[float] = None
    seen_tenants = set()
    for head in eligible:
        tenant = head.request.tenant
        if tenant in seen_tenants:
            continue
        seen_tenants.add(tenant)
        group = [
            item for item in eligible if item.request.tenant == tenant
        ][: cluster.max_batch_size]
        oldest_arrival = min(item.request.arrival_s for item in group)
        release_at = oldest_arrival + cluster.batch_timeout_s
        if (
            len(group) >= cluster.max_batch_size
            or cluster.batch_timeout_s == 0.0
            or now >= release_at
        ):
            return group, None
        if earliest_release is None or release_at < earliest_release:
            earliest_release = release_at
    return None, earliest_release
