"""The pre-optimisation serving loop, kept as the correctness baseline.

:func:`reference_serve` is the event-driven simulation exactly as it shipped
before the heap-lane dispatcher: one full policy-order sort of the queue per
event instant, linear ``list.remove`` on dispatch.  It is O(n^2 log n) on a
deep queue and exists for the same reason :func:`repro.dse.naive_sweep`
does — so benchmarks and tests can assert the optimised
:meth:`Cluster.serve` is **bit-identical** (same :class:`ServingReport`,
record for record) while being several times faster
(``benchmarks/test_serve_speedup.py``).

Do not "fix" or optimise this module: its value is that it never changes.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .autoscale import AutoscalerMetrics, CarbonWaitingAdmission
from .arrivals import ServingRequest
from .cluster import (
    _ACTIVE,
    _ARRIVAL,
    _COMPLETION,
    _DEAD,
    _DRAINING,
    _FAIL,
    _PROVISIONING,
    _RECOVER,
    _SCALE,
    _TIMER,
    _new_event_counts,
    _QueueItem,
    _SimState,
)
from .report import ServingRecord, ServingReport, assemble_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster

__all__ = ["reference_serve", "reference_serve_dynamic", "assert_reports_identical"]


def assert_reports_identical(candidate: ServingReport, reference: ServingReport) -> None:
    """Assert two serving reports are bit-identical, field by field.

    "Bit-identical" means exactly that: every record, every per-tenant
    latency/energy array, the utilisation vector, the queue-depth trace and
    the JSON serialisation must match with ``==`` / ``array_equal`` — no
    tolerances.  This is the contract the optimised dispatcher owes the
    reference implementation.
    """
    assert candidate.to_json() == reference.to_json()
    assert candidate.records == reference.records
    assert candidate.dropped_requests == reference.dropped_requests
    assert candidate.shed_requests == reference.shed_requests
    assert np.array_equal(
        candidate.per_replica_utilisation, reference.per_replica_utilisation
    )
    assert np.array_equal(candidate.batch_sizes, reference.batch_sizes)
    assert np.array_equal(candidate.queue_depth_times_s, reference.queue_depth_times_s)
    assert np.array_equal(candidate.queue_depth_trace, reference.queue_depth_trace)
    assert candidate.horizon_s == reference.horizon_s
    assert candidate.replica_seconds == reference.replica_seconds
    assert candidate.event_counts == reference.event_counts
    assert candidate.energy_j == reference.energy_j
    assert candidate.carbon_gco2 == reference.carbon_gco2
    if reference.replica_energy_j is None:
        assert candidate.replica_energy_j is None
    else:
        assert np.array_equal(
            candidate.replica_energy_j, reference.replica_energy_j
        )
    if reference.replica_count_trace is None:
        assert candidate.replica_count_trace is None
    else:
        assert np.array_equal(
            candidate.replica_count_times_s, reference.replica_count_times_s
        )
        assert np.array_equal(
            candidate.replica_count_trace, reference.replica_count_trace
        )
    assert set(candidate.tenants) == set(reference.tenants)
    for tenant, outcome in candidate.tenants.items():
        expected = reference.tenants[tenant]
        assert (
            outcome.submitted,
            outcome.completed,
            outcome.dropped,
            outcome.shed,
        ) == (
            expected.submitted,
            expected.completed,
            expected.dropped,
            expected.shed,
        )
        report, expected_report = outcome.report, expected.report
        assert np.array_equal(
            report.per_graph_latency_ms, expected_report.per_graph_latency_ms
        )
        assert np.array_equal(
            report.per_graph_energy_mj, expected_report.per_graph_energy_mj
        )
        assert np.array_equal(
            report.stream_statistics.per_graph_latency_s,
            expected_report.stream_statistics.per_graph_latency_s,
        )
        assert np.array_equal(
            report.stream_statistics.completion_times_s,
            expected_report.stream_statistics.completion_times_s,
        )
        assert np.array_equal(
            report.stream_statistics.queue_depth_trace,
            expected_report.stream_statistics.queue_depth_trace,
        )
        assert report.extras == expected_report.extras


def reference_serve(
    cluster: "Cluster",
    requests: Sequence[ServingRequest],
    duration_s: Optional[float] = None,
) -> ServingReport:
    """Run the pre-optimisation simulation loop on ``cluster``.

    Accepts the same arguments as :meth:`Cluster.serve` and must produce a
    bit-identical report.
    """
    policy = cluster.policy
    policy.reset(cluster.num_replicas)
    for request in requests:
        if request.tenant not in cluster.services:
            raise ValueError(f"request for unknown tenant {request.tenant!r}")
    items = [
        _QueueItem(
            request=request,
            seq=seq,
            service_s=cluster.services[request.tenant].service_s(
                request.graph_index,
                batch_size=cluster.services[request.tenant].base_batch_size,
            ),
        )
        for seq, request in enumerate(
            sorted(requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index))
        )
    ]

    state = _SimState(
        busy_until=[0.0] * cluster.num_replicas,
        queued_work=[0.0] * cluster.num_replicas,
    )
    busy_time = [0.0] * cluster.num_replicas
    queue: List[_QueueItem] = []
    records: List[ServingRecord] = []
    dropped: List[ServingRequest] = []
    batch_sizes: List[int] = []
    trace_times: List[float] = []
    trace_depths: List[int] = []
    scheduled_timers: set = set()

    events: List[Tuple[float, int, int]] = [
        (item.request.arrival_s, _ARRIVAL, item.seq) for item in items
    ]
    heapq.heapify(events)

    while events:
        now = events[0][0]
        state.now = now
        while events and events[0][0] == now:
            _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                item = items[payload]
                if (
                    cluster.queue_capacity is not None
                    and len(queue) >= cluster.queue_capacity
                ):
                    dropped.append(item.request)
                else:
                    item.replica = policy.assign(item, state)
                    if item.replica is not None:
                        state.queued_work[item.replica] += item.service_s
                    queue.append(item)
        trace_times.append(now)
        trace_depths.append(len(queue))
        _dispatch(
            cluster, now, state, queue, busy_time, records, batch_sizes,
            events, scheduled_timers,
        )

    assert not queue, "simulation ended with requests still queued"
    return assemble_report(
        cluster=cluster,
        records=records,
        dropped=dropped,
        busy_time=busy_time,
        batch_sizes=batch_sizes,
        trace_times=np.array(trace_times, dtype=np.float64),
        trace_depths=np.array(trace_depths, dtype=np.int64),
        duration_s=duration_s,
    )


def reference_serve_dynamic(
    cluster: "Cluster",
    requests: Sequence[ServingRequest],
    duration_s: Optional[float] = None,
) -> ServingReport:
    """The full-sort scalar oracle for the *dynamic* serving loop.

    Mirrors :meth:`Cluster._serve_dynamic` (exact mode) with the naive data
    structures of :func:`reference_serve`: a flat queue list re-sorted per
    instant instead of heap lanes, linear scans instead of incremental
    bookkeeping.  Every control-plane float expression — the rented-time
    integral, provisioning completion times, hysteresis comparisons, tick
    scheduling, the power/carbon ledger segments and carbon-hold release
    times — is written identically to the optimised loop so the two paths
    produce bit-identical reports, which the dynamic contract tests pin.
    Like :func:`reference_serve`, this function's value is that it is too
    simple to be wrong; keep it naive.
    """
    policy = cluster.policy
    policy.reset(cluster.num_replicas)
    autoscaler = cluster.autoscaler
    carbon_trace = cluster.carbon
    if autoscaler is not None:
        autoscaler.reset()
        autoscaler.bind_carbon(carbon_trace)
    admission = cluster.admission
    power_model = cluster.resolved_power()
    holding = (
        isinstance(admission, CarbonWaitingAdmission) and carbon_trace is not None
    )
    tenant_classes = {w.tenant: w.tenant_class for w in cluster.workloads}
    mean_service = cluster.mean_service_s()

    for request in requests:
        if request.tenant not in cluster.services:
            raise ValueError(f"request for unknown tenant {request.tenant!r}")
    items = [
        _QueueItem(
            request=request,
            seq=seq,
            service_s=cluster.services[request.tenant].service_s(
                request.graph_index,
                batch_size=cluster.services[request.tenant].base_batch_size,
            ),
        )
        for seq, request in enumerate(
            sorted(requests, key=lambda r: (r.arrival_s, r.tenant_index, r.index))
        )
    ]

    num_initial = cluster.num_replicas
    state = _SimState(
        busy_until=[0.0] * num_initial,
        queued_work=[0.0] * num_initial,
    )
    states = [_ACTIVE] * num_initial
    factors = [1.0] * num_initial
    busy_time = [0.0] * num_initial
    queue: List[_QueueItem] = []
    records: List[ServingRecord] = []
    dropped: List[ServingRequest] = []
    shed: List[ServingRequest] = []
    batch_sizes: List[int] = []
    trace_times: List[float] = []
    trace_depths: List[int] = []
    timeline_times: List[float] = [0.0]
    timeline_counts: List[int] = [num_initial]
    scheduled_timers: set = set()
    events: List[Tuple[float, int, int]] = [
        (item.request.arrival_s, _ARRIVAL, item.seq) for item in items
    ]
    heapq.heapify(events)
    controls: List[Tuple[str, int, float]] = []
    counts = _new_event_counts()

    rented = num_initial
    rented_integral = 0.0
    last_change_s = 0.0
    last_scale_up_s = -math.inf
    arrivals_since = 0
    completions_since = 0

    # Power ledger — same segment-sum float expressions as the optimised
    # loop's `power_set` / `power_add`, in the same call order.
    watts: List[float] = []
    last_w_change: List[float] = []
    energy_acc: List[float] = []
    power_w = 0.0
    carbon_g = 0.0
    last_c_change = 0.0
    if power_model is not None:
        for _ in range(num_initial):
            watts.append(power_model.idle_w)
            last_w_change.append(0.0)
            energy_acc.append(0.0)
            power_w += power_model.idle_w

    def power_set(now: float, r: int, new_w: float) -> None:
        nonlocal power_w, carbon_g, last_c_change
        if carbon_trace is not None:
            carbon_g += power_w * carbon_trace.integral_g_per_j(last_c_change, now)
            last_c_change = now
        energy_acc[r] += watts[r] * (now - last_w_change[r])
        last_w_change[r] = now
        power_w = power_w - watts[r] + new_w
        watts[r] = new_w

    def power_add(now: float, new_w: float) -> None:
        nonlocal power_w, carbon_g, last_c_change
        if carbon_trace is not None:
            carbon_g += power_w * carbon_trace.integral_g_per_j(last_c_change, now)
            last_c_change = now
        watts.append(new_w)
        last_w_change.append(now)
        energy_acc.append(0.0)
        power_w = power_w + new_w

    power_busy: Optional[Callable[[float, int], None]] = None
    power_gate: Optional[Callable[[float, int], bool]] = None
    if power_model is not None:

        def power_busy(now: float, r: int) -> None:
            power_set(now, r, power_model.busy_watts(factors[r]))

        if cluster.power_cap_w is not None:
            cap_w = cluster.power_cap_w

            def power_gate(now: float, r: int) -> bool:
                if (
                    power_w - watts[r] + power_model.busy_watts(factors[r])
                    <= cap_w
                ):
                    return False
                # Same progress guarantee as the optimised gate: never
                # block when no batch is in flight anywhere.
                return any(t > now for t in state.busy_until)

    # Deferrable work held for a cleaner grid window (EDD heap, released in
    # the same pop order as the optimised loop so the queued_work float
    # additions and capacity checks match exactly).
    held: List[Tuple[float, int]] = []

    def release_held(now: float) -> None:
        clean = (
            carbon_trace.intensity_at(now) <= admission.carbon_threshold
        )
        kept: List[Tuple[float, int]] = []
        while held:
            deadline, seq = heapq.heappop(held)
            item = items[seq]
            due = admission.release_at_s(deadline, item.service_s)
            if clean or now >= due:
                if (
                    cluster.queue_capacity is not None
                    and len(queue) >= cluster.queue_capacity
                ):
                    dropped.append(item.request)
                else:
                    item.replica = policy.assign(item, state)
                    if item.replica is not None:
                        state.queued_work[item.replica] += item.service_s
                    queue.append(item)
            else:
                kept.append((deadline, seq))
        for entry in kept:
            heapq.heappush(held, entry)

    def push_control(
        time_s: float, kind: int, action: str, replica: int, factor: float = 1.0
    ) -> None:
        heapq.heappush(events, (time_s, kind, len(controls)))
        controls.append((action, replica, factor))

    def timeline(now: float, delta: int) -> None:
        nonlocal rented, rented_integral, last_change_s
        rented_integral += rented * (now - last_change_s)
        last_change_s = now
        rented += delta
        timeline_times.append(now)
        timeline_counts.append(rented)

    def reroute(replica: int) -> None:
        # The queue list is in admission (seq) order, so this scan visits the
        # dead replica's items in the same order the optimised loop's
        # seq-sorted lane drain does.
        for item in queue:
            if item.replica != replica:
                continue
            state.queued_work[replica] -= item.service_s
            item.replica = policy.assign(item, state)
            if item.replica is not None:
                state.queued_work[item.replica] += item.service_s

    def add_replicas(now: float, count: int) -> None:
        nonlocal last_scale_up_s
        for _ in range(count):
            rid = len(states)
            states.append(_PROVISIONING)
            factors.append(1.0)
            state.busy_until.append(0.0)
            state.queued_work.append(0.0)
            busy_time.append(0.0)
            if power_model is not None:
                power_add(now, power_model.provisioning_w)
            push_control(now + autoscaler.provision_delay_s, _SCALE, "provision", rid)
        policy.rebind(len(states))
        timeline(now, count)
        counts["scale_up_events"] += 1
        counts["replicas_added"] += count
        last_scale_up_s = now

    def remove_replicas(now: float, count: int) -> None:
        victims = sorted(
            (r for r in range(len(states)) if states[r] == _PROVISIONING),
            reverse=True,
        )[:count]
        remaining = count - len(victims)
        if remaining:
            victims.extend(sorted(state.live, reverse=True)[:remaining])
        for r in victims:
            if states[r] == _PROVISIONING:
                states[r] = _DEAD
                if power_model is not None:
                    power_set(now, r, 0.0)
                timeline(now, -1)
            else:
                states[r] = _DRAINING
                state.live.remove(r)
                reroute(r)
                drain_end = state.busy_until[r] if state.busy_until[r] > now else now
                push_control(drain_end, _SCALE, "retire", r)
        counts["scale_down_events"] += 1
        counts["replicas_removed"] += len(victims)

    def handle_control(now: float, action: str, replica: int, factor: float) -> None:
        nonlocal arrivals_since, completions_since
        if action == "tick":
            active = len(state.live)
            provisioning = sum(1 for s in states if s == _PROVISIONING)
            busy = sum(1 for r in state.live if state.busy_until[r] > now)
            metrics = AutoscalerMetrics(
                now_s=now,
                queue_depth=len(queue),
                active_replicas=active,
                provisioning_replicas=provisioning,
                busy_replicas=busy,
                arrivals_since_last=arrivals_since,
                batch_completions_since_last=completions_since,
                interval_s=autoscaler.interval_s,
                mean_service_s=mean_service,
            )
            arrivals_since = 0
            completions_since = 0
            desired = int(autoscaler.desired_replicas(metrics))
            desired = max(
                autoscaler.min_replicas, min(autoscaler.max_replicas, desired)
            )
            target = active + provisioning
            if desired > target:
                add_replicas(now, desired - target)
            elif (
                desired < target
                and now - last_scale_up_s >= autoscaler.scale_down_hysteresis_s
            ):
                remove_replicas(now, target - desired)
            if events or queue:
                push_control(now + autoscaler.interval_s, _SCALE, "tick", -1)
        elif action == "provision":
            if states[replica] == _PROVISIONING:
                states[replica] = _ACTIVE
                if power_model is not None:
                    power_set(now, replica, power_model.idle_w)
                insort(state.live, replica)
        elif action == "retire":
            if states[replica] == _DRAINING:
                states[replica] = _DEAD
                if power_model is not None:
                    power_set(now, replica, 0.0)
                timeline(now, -1)
        elif action == "fail":
            if replica < len(states) and states[replica] in (_PROVISIONING, _ACTIVE):
                was_active = states[replica] == _ACTIVE
                states[replica] = _DEAD
                if was_active:
                    state.live.remove(replica)
                    reroute(replica)
                if power_model is not None:
                    power_set(now, replica, 0.0)
                timeline(now, -1)
                counts["failures"] += 1
        elif action == "recover":
            if replica < len(states) and states[replica] == _DEAD:
                states[replica] = _ACTIVE
                factors[replica] = 1.0
                if power_model is not None:
                    power_set(now, replica, power_model.idle_w)
                insort(state.live, replica)
                timeline(now, 1)
                counts["recoveries"] += 1
        elif action == "degrade":
            if replica < len(states) and states[replica] == _ACTIVE:
                factors[replica] = factor
                counts["degradations"] += 1
        elif action == "restore":
            if (
                replica < len(states)
                and states[replica] == _ACTIVE
                and factors[replica] != 1.0
            ):
                factors[replica] = 1.0
                counts["restorations"] += 1
        elif action == "release":
            if held:
                release_held(now)

    if cluster.faults is not None:
        for fault in cluster.faults.events:
            kind = _FAIL if fault.action in ("fail", "degrade") else _RECOVER
            push_control(fault.time_s, kind, fault.action, fault.replica, fault.factor)
    if autoscaler is not None:
        push_control(autoscaler.interval_s, _SCALE, "tick", -1)

    while events:
        now = events[0][0]
        state.now = now
        while events and events[0][0] == now:
            _, kind, payload = heapq.heappop(events)
            if kind == _ARRIVAL:
                arrivals_since += 1
                item = items[payload]
                held_now = False
                if (
                    holding
                    and tenant_classes[item.request.tenant] == "deferrable"
                    and carbon_trace.intensity_at(now) > admission.carbon_threshold
                ):
                    deadline = item.request.absolute_deadline_s
                    due = admission.release_at_s(deadline, item.service_s)
                    next_clean = carbon_trace.next_below_s(
                        admission.carbon_threshold, now
                    )
                    release_at = due if due < next_clean else next_clean
                    if now < release_at < math.inf:
                        held_now = True
                        heapq.heappush(held, (deadline, item.seq))
                        push_control(release_at, _SCALE, "release", item.seq)
                if held_now:
                    pass
                elif admission is not None and admission.should_shed(
                    item, len(queue), state
                ):
                    shed.append(item.request)
                elif (
                    cluster.queue_capacity is not None
                    and len(queue) >= cluster.queue_capacity
                ):
                    dropped.append(item.request)
                else:
                    item.replica = policy.assign(item, state)
                    if item.replica is not None:
                        state.queued_work[item.replica] += item.service_s
                    queue.append(item)
            elif kind == _COMPLETION:
                completions_since += 1
                if power_model is not None:
                    power_set(
                        now,
                        payload,
                        power_model.idle_w
                        if states[payload] in (_ACTIVE, _DRAINING)
                        else 0.0,
                    )
            elif kind == _TIMER:
                pass
            else:
                action, target, factor = controls[payload]
                handle_control(now, action, target, factor)
        trace_times.append(now)
        trace_depths.append(len(queue))
        _dispatch_dynamic(
            cluster, now, state, factors, queue, busy_time, records, batch_sizes,
            events, scheduled_timers, power_gate, power_busy,
        )

    if queue:
        # All replicas gone forever: count the stranded backlog as shed so
        # conservation (submitted = completed + dropped + shed) holds.
        for item in sorted(queue, key=lambda item: item.seq):
            shed.append(item.request)
        del queue[:]

    replica_seconds_state = (rented_integral, last_change_s, rented)
    power_state = None
    if power_model is not None:
        power_state = (
            energy_acc,
            watts,
            last_w_change,
            power_w,
            carbon_g,
            last_c_change,
            carbon_trace,
        )
    return assemble_report(
        cluster=cluster,
        records=records,
        dropped=dropped,
        busy_time=busy_time,
        batch_sizes=batch_sizes,
        trace_times=np.array(trace_times, dtype=np.float64),
        trace_depths=np.array(trace_depths, dtype=np.int64),
        duration_s=duration_s,
        shed=shed,
        replica_count_times_s=np.array(timeline_times, dtype=np.float64),
        replica_count_trace=np.array(timeline_counts, dtype=np.int64),
        replica_seconds_state=replica_seconds_state,
        event_counts=counts,
        power_state=power_state,
    )


def _dispatch_dynamic(
    cluster: "Cluster",
    now: float,
    state: _SimState,
    factors: List[float],
    queue: List[_QueueItem],
    busy_time: List[float],
    records: List[ServingRecord],
    batch_sizes: List[int],
    events: List[Tuple[float, int, int]],
    scheduled_timers: set,
    power_gate: Optional[Callable[[float, int], bool]] = None,
    power_busy: Optional[Callable[[float, int], None]] = None,
) -> None:
    """The full-sort dispatch walk over the live replica subset.

    Same shape as the static :func:`_dispatch`, but iterating ``state.live``
    instead of the full pool and stretching service times by the replica's
    degradation factor — with the multiplication placed exactly as in
    :meth:`Cluster._dispatch` so the floats match bit for bit.
    """
    ordered = sorted(
        queue, key=lambda item: cluster.policy.order_key(item) + (item.seq,)
    )
    taken: set = set()
    for replica in state.live:
        if state.busy_until[replica] > now or len(taken) == len(ordered):
            continue
        if power_gate is not None and power_gate(now, replica):
            continue
        eligible = [
            item
            for item in ordered
            if item.seq not in taken
            and (item.replica is None or item.replica == replica)
        ]
        batch, release_at = _select_batch(cluster, eligible, now)
        if batch is None:
            if release_at is not None and release_at not in scheduled_timers:
                scheduled_timers.add(release_at)
                heapq.heappush(events, (release_at, _TIMER, replica))
            continue
        for item in batch:
            taken.add(item.seq)
            queue.remove(item)
            if item.replica is not None:
                state.queued_work[item.replica] -= item.service_s
        tenant = batch[0].request.tenant
        size = len(batch)
        measure_at = (
            size
            if cluster.max_batch_size > 1
            else cluster.services[tenant].base_batch_size
        )
        measured = cluster.services[tenant].measurement(batch_size=measure_at)
        latencies = measured.latencies_s
        factor = factors[replica]
        service_each = [
            float(latencies[item.request.graph_index]) * factor for item in batch
        ]
        finish = now
        for service_s in service_each:
            finish = finish + service_s
        service_total = finish - now
        state.busy_until[replica] = finish
        busy_time[replica] += service_total
        if power_busy is not None:
            power_busy(now, replica)
        batch_sizes.append(size)
        heapq.heappush(events, (finish, _COMPLETION, replica))
        for item, service_s in zip(batch, service_each):
            records.append(
                ServingRecord(
                    request=item.request,
                    service_s=service_s,
                    energy_j=float(measured.energies_j[item.request.graph_index]),
                    start_s=now,
                    completion_s=finish,
                    replica=replica,
                    batch_size=size,
                )
            )


def _dispatch(
    cluster: "Cluster",
    now: float,
    state: _SimState,
    queue: List[_QueueItem],
    busy_time: List[float],
    records: List[ServingRecord],
    batch_sizes: List[int],
    events: List[Tuple[float, int, int]],
    scheduled_timers: set,
) -> None:
    """Start work on every replica that is free at ``now`` (full-sort path)."""
    ordered = sorted(
        queue, key=lambda item: cluster.policy.order_key(item) + (item.seq,)
    )
    taken: set = set()
    for replica in range(cluster.num_replicas):
        if state.busy_until[replica] > now or len(taken) == len(ordered):
            continue
        eligible = [
            item
            for item in ordered
            if item.seq not in taken
            and (item.replica is None or item.replica == replica)
        ]
        batch, release_at = _select_batch(cluster, eligible, now)
        if batch is None:
            if release_at is not None and release_at not in scheduled_timers:
                scheduled_timers.add(release_at)
                heapq.heappush(events, (release_at, _TIMER, replica))
            continue
        for item in batch:
            taken.add(item.seq)
            queue.remove(item)
            if item.replica is not None:
                state.queued_work[item.replica] -= item.service_s
        tenant = batch[0].request.tenant
        size = len(batch)
        measure_at = (
            size
            if cluster.max_batch_size > 1
            else cluster.services[tenant].base_batch_size
        )
        measured = cluster.services[tenant].measurement(batch_size=measure_at)
        latencies = measured.latencies_s
        finish = now
        for item in batch:
            finish = finish + float(latencies[item.request.graph_index])
        service_total = finish - now
        state.busy_until[replica] = finish
        busy_time[replica] += service_total
        batch_sizes.append(size)
        heapq.heappush(events, (finish, _COMPLETION, replica))
        for item in batch:
            records.append(
                ServingRecord(
                    request=item.request,
                    service_s=float(latencies[item.request.graph_index]),
                    energy_j=float(measured.energies_j[item.request.graph_index]),
                    start_s=now,
                    completion_s=finish,
                    replica=replica,
                    batch_size=size,
                )
            )


def _select_batch(
    cluster: "Cluster", eligible: List[_QueueItem], now: float
) -> Tuple[Optional[List[_QueueItem]], Optional[float]]:
    """The batch a free replica should start at ``now``, or when to retry."""
    if not eligible:
        return None, None
    earliest_release: Optional[float] = None
    seen_tenants = set()
    for head in eligible:
        tenant = head.request.tenant
        if tenant in seen_tenants:
            continue
        seen_tenants.add(tenant)
        group = [
            item for item in eligible if item.request.tenant == tenant
        ][: cluster.max_batch_size]
        oldest_arrival = min(item.request.arrival_s for item in group)
        release_at = oldest_arrival + cluster.batch_timeout_s
        if (
            len(group) >= cluster.max_batch_size
            or cluster.batch_timeout_s == 0.0
            or now >= release_at
        ):
            return group, None
        if earliest_release is None or release_at < earliest_release:
            earliest_release = release_at
    return None, earliest_release
