"""``Workload``: the per-tenant specification of a serving scenario.

A workload describes one tenant's traffic: which model and dataset it runs
(the dataset acting as the pool of request payloads), how urgent each request
is (relative deadline, priority) and how much of the cluster's traffic the
tenant accounts for (``share``).  Validation is eager and reuses
:class:`~repro.api.InferenceRequest` wholesale — a typo'd model name or a bad
knob fails when the workload is constructed, before any simulation starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from ..arch.config import ArchitectureConfig
from ..datasets.base import GraphDataset
from ..graph import Graph
from ..nn.models.base import GNNModel
from ..api import InferenceRequest

__all__ = ["Workload", "TENANT_CLASSES"]

#: Recognised tenant classes (carbon-aware admission may hold deferrable work).
TENANT_CLASSES = ("realtime", "deferrable")


@dataclass
class Workload:
    """One tenant's request stream, declaratively.

    Parameters
    ----------
    tenant:
        Unique tenant name (the key of every per-tenant report entry).
    model / dataset / config / num_graphs / seed / batch_size:
        Forwarded verbatim to :class:`~repro.api.InferenceRequest`; the
        dataset's graphs form the tenant's request pool — request ``i``
        carries graph ``i mod num_graphs``.
    deadline_s:
        Relative per-request deadline, measured from arrival to completion
        (queueing and batching delay count).  ``None`` means best-effort.
    priority:
        Tie-breaker for SLO-aware dispatch (higher is more urgent).
    share:
        Relative traffic share, used by the :class:`~repro.serve.LoadGenerator`
        conveniences that split a cluster-wide request rate across tenants.
    tenant_class:
        ``"realtime"`` (default) or ``"deferrable"``.  Carbon-aware admission
        (``carbon_waiting``) may hold deferrable requests for cleaner grid
        windows, releasing them before their deadlines; real-time tenants are
        never held.
    """

    tenant: str
    model: Union[str, GNNModel] = "GIN"
    dataset: Union[str, GraphDataset, Iterable[Graph]] = "MolHIV"
    config: Union[ArchitectureConfig, Mapping, None] = None
    num_graphs: Optional[int] = None
    seed: Optional[int] = None
    batch_size: int = 1
    deadline_s: Optional[float] = None
    priority: int = 0
    share: float = 1.0
    tenant_class: str = "realtime"
    request: InferenceRequest = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ValueError("tenant must be a non-empty string")
        if not isinstance(self.priority, int):
            raise ValueError("priority must be an int")
        if not self.share > 0:
            raise ValueError("share must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.tenant_class not in TENANT_CLASSES:
            raise ValueError(
                f"tenant_class must be one of {TENANT_CLASSES}, "
                f"got {self.tenant_class!r}"
            )
        # Eager validation of model/dataset/config/batch size happens here.
        self.request = InferenceRequest(
            model=self.model,
            dataset=self.dataset,
            config=self.config,
            batch_size=self.batch_size,
            num_graphs=self.num_graphs,
            seed=self.seed,
            deadline_s=self.deadline_s,
        )

    @classmethod
    def from_request(
        cls,
        tenant: str,
        request: InferenceRequest,
        priority: int = 0,
        share: float = 1.0,
        tenant_class: str = "realtime",
    ) -> "Workload":
        """Wrap an existing request as a tenant workload.

        The request object itself is kept (not copied), so its memoised
        resolution is shared — a workload built from a request a backend
        already ran sees the exact same graphs and model instance.
        """
        workload = cls(
            tenant=tenant,
            model=request.model,
            dataset=request.dataset,
            config=request.config,
            num_graphs=request.num_graphs,
            seed=request.seed,
            batch_size=request.batch_size,
            deadline_s=request.deadline_s,
            priority=priority,
            share=share,
            tenant_class=tenant_class,
        )
        workload.request = request
        return workload

    @property
    def num_pool_graphs(self) -> int:
        """Number of distinct graphs in the tenant's request pool."""
        return len(self.request.resolve().graphs)

    def describe(self) -> str:
        deadline = (
            f"{self.deadline_s * 1e6:.0f}us" if self.deadline_s is not None else "none"
        )
        tenant_class = (
            f", class={self.tenant_class}" if self.tenant_class != "realtime" else ""
        )
        return (
            f"Workload(tenant={self.tenant!r}, {self.request.describe()}, "
            f"deadline={deadline}, priority={self.priority}, "
            f"share={self.share}{tenant_class})"
        )
