"""Static HTML report generation from a results store.

The reporting half of the experiment service, modelled on fuzzbench's
``analysis/generate_report.py`` / ``plotting.py`` / ``rendering.py``: the
report is generated **offline from the store** — it never runs anything —
and is fully self-contained (inline CSS and inline SVG; no JavaScript, no
external assets), so CI can upload the output directory as a build artifact
and any browser can open it.

Sections, each produced only when the store holds matching data:

* per-kind **run history** — provenance table per recorded kind, with each
  run's full ``to_json()`` payload embedded **verbatim** in a
  ``<script type="application/json">`` island (byte-identical to what the
  run serialised; pinned by ``tests/test_results.py``);
* **benchmark trajectory** — one inline-SVG series per ingested benchmark
  over recording time/commits (mean wall clock, or speedup where recorded);
* **Pareto frontier** scatter for the latest dse and plan runs;
* **gate verdicts** — the most recent regression-gate outcomes;
* a **run-vs-run comparison** (``--compare A B``) with Mann-Whitney U and
  seeded bootstrap confidence intervals (:mod:`repro.results.stats`).

Determinism: given a fixed store, the generated HTML is byte-identical
across invocations — no generation timestamps, no unsorted iteration.
"""

from __future__ import annotations

import html
import json
import os
from string import Template
from typing import Dict, List, Optional, Sequence, Tuple

from .stats import compare_samples
from .store import ResultStore, StoreError, StoredRun

__all__ = ["generate_report", "compare_runs", "DEFAULT_COMPARE_METRICS"]

_TEMPLATE_PATH = os.path.join(os.path.dirname(__file__), "templates", "report.html")

#: The metric ``--compare`` tests when none is named, chosen per run kind.
DEFAULT_COMPARE_METRICS: Dict[str, str] = {
    "dse": "latency_ms",
    "plan": "worst_p99_latency_ms",
    "serve": "p99_latency_ms",
    "experiments": "latency_ms",
}


# ---------------------------------------------------------------------------
# HTML building blocks
# ---------------------------------------------------------------------------
def _format_cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _html_table(rows: Sequence[Dict], caption: str = "") -> str:
    """An escaped HTML table over dict rows (union of keys, first-seen order)."""
    if not rows:
        return "<p class='meta'>(empty)</p>"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    parts = ["<table>"]
    if caption:
        parts.append(f"<caption>{html.escape(caption)}</caption>")
    parts.append(
        "<tr>" + "".join(f"<th>{html.escape(str(col))}</th>" for col in columns) + "</tr>"
    )
    for row in rows:
        parts.append(
            "<tr>"
            + "".join(
                f"<td>{html.escape(_format_cell(row.get(col)))}</td>" for col in columns
            )
            + "</tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def _payload_island(run: StoredRun) -> str:
    """The run's payload embedded byte-for-byte inside a JSON script island.

    JSON never contains a raw ``</script>`` unless a string value spells it
    out; in that (pathological) case fall back to an escaped ``<pre>`` so
    the document stays well-formed — at the cost of byte identity for that
    one run.
    """
    if "</script" in run.payload.lower():
        return f"<details><summary>payload</summary><pre>{html.escape(run.payload)}</pre></details>"
    return (
        f'<script type="application/json" class="run-payload" '
        f'id="payload-{html.escape(run.run_id)}">\n{run.payload}\n</script>'
    )


# ---------------------------------------------------------------------------
# Inline SVG charts (no plotting dependency)
# ---------------------------------------------------------------------------
_CHART_W, _CHART_H, _MARGIN = 640, 220, 42


def _scale(values: Sequence[float], out_low: float, out_high: float):
    low, high = min(values), max(values)
    span = (high - low) or 1.0

    def to_pixels(value: float) -> float:
        return out_low + (value - low) / span * (out_high - out_low)

    return to_pixels, low, high


def _svg_header(title: str) -> List[str]:
    return [
        f'<svg width="{_CHART_W}" height="{_CHART_H}" viewBox="0 0 {_CHART_W} {_CHART_H}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img" aria-label="{html.escape(title)}">',
        f'<text x="{_MARGIN}" y="16" font-size="12" fill="#2b3a67">{html.escape(title)}</text>',
    ]


def _svg_axes(y_low: float, y_high: float) -> List[str]:
    bottom = _CHART_H - _MARGIN
    return [
        f'<line x1="{_MARGIN}" y1="{bottom}" x2="{_CHART_W - 12}" y2="{bottom}" stroke="#8a90ad"/>',
        f'<line x1="{_MARGIN}" y1="24" x2="{_MARGIN}" y2="{bottom}" stroke="#8a90ad"/>',
        f'<text x="4" y="30" font-size="10" fill="#5c6080">{y_high:.4g}</text>',
        f'<text x="4" y="{bottom}" font-size="10" fill="#5c6080">{y_low:.4g}</text>',
    ]


def _svg_line_series(title: str, labels: Sequence[str], values: Sequence[float]) -> str:
    """One benchmark trajectory as an inline-SVG line chart."""
    bottom = _CHART_H - _MARGIN
    if len(values) == 1:
        xs = [(_MARGIN + _CHART_W - 12) / 2.0]
    else:
        step = (_CHART_W - 12 - _MARGIN) / (len(values) - 1)
        xs = [_MARGIN + i * step for i in range(len(values))]
    to_y, y_low, y_high = _scale(values, bottom, 24.0)
    parts = _svg_header(title) + _svg_axes(y_low, y_high)
    points = " ".join(f"{x:.1f},{to_y(v):.1f}" for x, v in zip(xs, values))
    if len(values) > 1:
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="#3b5bdb" stroke-width="1.5"/>'
        )
    for x, value, label in zip(xs, values, labels):
        parts.append(
            f'<circle cx="{x:.1f}" cy="{to_y(value):.1f}" r="3" fill="#3b5bdb">'
            f"<title>{html.escape(label)}: {value:.6g}</title></circle>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _svg_scatter(
    title: str,
    points: Sequence[Tuple[float, float]],
    frontier: Sequence[bool],
    x_label: str,
    y_label: str,
) -> str:
    """A Pareto scatter: all points grey, the frontier highlighted."""
    bottom = _CHART_H - _MARGIN
    to_x, x_low, x_high = _scale([p[0] for p in points], float(_MARGIN), _CHART_W - 12.0)
    to_y, y_low, y_high = _scale([p[1] for p in points], bottom, 24.0)
    parts = _svg_header(title) + _svg_axes(y_low, y_high)
    parts.append(
        f'<text x="{_CHART_W - 12}" y="{bottom + 14}" font-size="10" fill="#5c6080" '
        f'text-anchor="end">{html.escape(x_label)}: {x_low:.4g} – {x_high:.4g}</text>'
    )
    parts.append(
        f'<text x="{_MARGIN}" y="{bottom + 14}" font-size="10" '
        f'fill="#5c6080">{html.escape(y_label)} ↑</text>'
    )
    for (x, y), on_frontier in zip(points, frontier):
        color = "#c92a2a" if on_frontier else "#b3b8cf"
        radius = 4 if on_frontier else 3
        parts.append(
            f'<circle cx="{to_x(x):.1f}" cy="{to_y(y):.1f}" r="{radius}" fill="{color}">'
            f"<title>{x_label}={x:.6g}, {y_label}={y:.6g}"
            f"{' (frontier)' if on_frontier else ''}</title></circle>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------
def _numeric_column(rows: List[Dict], metric: str) -> List[float]:
    values = []
    for row in rows:
        value = row.get(metric)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values.append(float(value))
    return values


def _default_metric(run_a: StoredRun, run_b: StoredRun) -> str:
    preferred = DEFAULT_COMPARE_METRICS.get(run_a.kind)
    candidates = [preferred] if preferred else []
    if run_a.rows:
        candidates += list(run_a.rows[0].keys())
    for candidate in candidates:
        if candidate is None:
            continue
        if _numeric_column(run_a.rows, candidate) and _numeric_column(run_b.rows, candidate):
            return candidate
    raise StoreError(
        f"runs {run_a.run_id!r} and {run_b.run_id!r} share no numeric column "
        "to compare; pass --metric explicitly"
    )


def compare_runs(
    store: ResultStore,
    run_id_a: str,
    run_id_b: str,
    metric: Optional[str] = None,
    alpha: float = 0.05,
) -> Dict:
    """The run-vs-run verdict: Mann-Whitney U plus bootstrap CIs on one metric."""
    run_a = store.load_run(run_id_a)
    run_b = store.load_run(run_id_b)
    if metric is None:
        metric = _default_metric(run_a, run_b)
    values_a = _numeric_column(run_a.rows, metric)
    values_b = _numeric_column(run_b.rows, metric)
    if not values_a or not values_b:
        raise StoreError(
            f"metric {metric!r} has no numeric values in "
            f"{run_id_a if not values_a else run_id_b!r}"
        )
    verdict = compare_samples(values_a, values_b, alpha=alpha)
    verdict.update(
        run_a=run_id_a,
        run_b=run_id_b,
        kind_a=run_a.kind,
        kind_b=run_b.kind,
        metric=metric,
    )
    return verdict


def render_comparison_text(verdict: Dict) -> str:
    """The one-paragraph verdict ``repro report --compare`` prints."""
    a, b = verdict["a"], verdict["b"]
    lines = [
        f"comparing {verdict['run_a']} vs {verdict['run_b']} on {verdict['metric']!r}:",
        f"  {verdict['run_a']}: mean {a['mean']:.6g} "
        f"[{a['ci_low']:.6g}, {a['ci_high']:.6g}] over {verdict['n_a']} rows",
        f"  {verdict['run_b']}: mean {b['mean']:.6g} "
        f"[{b['ci_low']:.6g}, {b['ci_high']:.6g}] over {verdict['n_b']} rows",
    ]
    if verdict["significant"] is None:
        lines.append("  too few rows for a Mann-Whitney U test (need >= 2 per side)")
    else:
        state = "SIGNIFICANT" if verdict["significant"] else "not significant"
        lines.append(
            f"  Mann-Whitney U={verdict['u_statistic']:.6g}, "
            f"p={verdict['p_value']:.4g} → {state} at alpha={verdict['alpha']}"
        )
    return "\n".join(lines)


def _comparison_section(verdict: Dict) -> str:
    a, b = verdict["a"], verdict["b"]
    if verdict["significant"] is None:
        test_html = "<p class='warn'>too few rows for a Mann-Whitney U test</p>"
    else:
        css = "fail" if verdict["significant"] else "ok"
        state = "significant" if verdict["significant"] else "not significant"
        test_html = (
            f"<p>Mann-Whitney U = {verdict['u_statistic']:.6g}, "
            f"p = {verdict['p_value']:.4g} → <span class='{css}'>{state}</span> "
            f"at α = {verdict['alpha']}</p>"
        )
    table = _html_table(
        [
            {
                "run": verdict["run_a"],
                "rows": verdict["n_a"],
                "mean": a["mean"],
                "ci_low": a["ci_low"],
                "ci_high": a["ci_high"],
            },
            {
                "run": verdict["run_b"],
                "rows": verdict["n_b"],
                "mean": b["mean"],
                "ci_low": b["ci_low"],
                "ci_high": b["ci_high"],
            },
        ]
    )
    return (
        f"<h2>Comparison: {html.escape(verdict['run_a'])} vs "
        f"{html.escape(verdict['run_b'])}</h2>"
        f"<div class='verdict'><p>metric <code>{html.escape(verdict['metric'])}</code>, "
        f"95% bootstrap confidence intervals (seeded)</p>{table}{test_html}</div>"
    )


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------
def _run_history_section(store: ResultStore) -> str:
    parts: List[str] = []
    for kind in store.kinds():
        runs = store.runs(kind)
        parts.append(f"<h2>Run history: {html.escape(kind)} ({len(runs)} runs)</h2>")
        parts.append(_html_table([run.meta_row() for run in runs]))
        for run in runs:
            parts.append(_payload_island(run))
    return "\n".join(parts)


def _pareto_sections(store: ResultStore) -> str:
    from ..dse.pareto import pareto_frontier

    axes = {
        "dse": ("latency_ms", "power_w"),
        "plan": ("replica_seconds", "worst_p99_latency_ms"),
    }
    parts: List[str] = []
    for kind, (x_key, y_key) in axes.items():
        run_ids = store.run_ids(kind)
        if not run_ids:
            continue
        run = store.load_run(run_ids[-1])
        rows = [
            row
            for row in run.rows
            if isinstance(row.get(x_key), (int, float))
            and isinstance(row.get(y_key), (int, float))
        ]
        if len(rows) < 2:
            continue
        frontier_rows = pareto_frontier(rows, (x_key, y_key))
        frontier_ids = {id(row) for row in frontier_rows}
        parts.append(f"<h2>Pareto frontier: latest {html.escape(kind)} run "
                     f"({html.escape(run.run_id)})</h2>")
        parts.append(
            _svg_scatter(
                f"{kind}: {y_key} vs {x_key} ({len(frontier_rows)} of "
                f"{len(rows)} points on the frontier)",
                [(float(row[x_key]), float(row[y_key])) for row in rows],
                [id(row) in frontier_ids for row in rows],
                x_key,
                y_key,
            )
        )
    return "\n".join(parts)


def _benchmark_section(store: ResultStore) -> str:
    names = store.benchmark_names()
    if not names:
        return ""
    parts = [f"<h2>Benchmark trajectory ({len(names)} benchmarks)</h2>"]
    for name in names:
        trajectory = store.benchmark_trajectory(name)
        parts.append(f"<h3>{html.escape(name)}</h3>")
        # Speedup-convention benchmarks chart the hardware-independent ratio;
        # the rest chart mean wall clock.
        speedups = [point["speedup"] for point in trajectory]
        if all(s is not None for s in speedups):
            values, unit = [float(s) for s in speedups], "speedup (x)"
        else:
            values, unit = [float(p["mean_s"]) for p in trajectory], "mean (s)"
        labels = [
            f"{(p['commit_sha'] or '?')[:10]} @ {p['recorded_utc']}" for p in trajectory
        ]
        parts.append(_svg_line_series(f"{unit} over {len(values)} recordings", labels, values))
        parts.append(
            _html_table(
                [
                    {
                        "recorded_utc": p["recorded_utc"],
                        "commit": (p["commit_sha"] or "?")[:10],
                        "mean_s": p["mean_s"],
                        "stddev_s": p["stddev_s"],
                        "speedup": p["speedup"],
                        "cpus": p["cpus"],
                        "machine": p["machine"],
                    }
                    for p in trajectory
                ]
            )
        )
    return "\n".join(parts)


def _verdict_section(store: ResultStore) -> str:
    rows = store.verdict_rows()
    if not rows:
        return ""
    decorated = []
    for row in rows:
        css = {"ok": "ok", "FAIL": "fail"}.get(row["verdict"], "warn")
        decorated.append({**row, "verdict": row["verdict"], "_css": css})
    parts = [f"<h2>Regression-gate verdicts ({len(rows)})</h2>"]
    # Render with per-row verdict colouring (small bespoke table).
    header = ["recorded_utc", "benchmark", "verdict", "mode", "ratio", "bound", "skipped_reason"]
    body = ["<table>", "<tr>" + "".join(f"<th>{h}</th>" for h in header) + "</tr>"]
    for row in decorated:
        cells = []
        for key in header:
            value = _format_cell(row.get(key))
            if key == "verdict":
                cells.append(f"<td class='{row['_css']}'>{html.escape(value)}</td>")
            else:
                cells.append(f"<td>{html.escape(value)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    body.append("</table>")
    parts.append("\n".join(body))
    return "\n".join(parts)


def _overview_section(store: ResultStore) -> str:
    rows = [
        {"kind": kind, "runs": len(store.run_ids(kind))} for kind in store.kinds()
    ]
    benches = store.benchmark_names()
    if benches:
        rows.append({"kind": "(benchmarks)", "runs": len(benches)})
    if not rows:
        return "<p class='warn'>the store holds no runs yet — record one with --record</p>"
    return "<h2>Overview</h2>\n" + _html_table(rows)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def generate_report(
    store: ResultStore,
    out_dir: str,
    compare: Optional[Tuple[str, str]] = None,
    metric: Optional[str] = None,
    alpha: float = 0.05,
) -> str:
    """Write ``out_dir/index.html`` from the store; returns the file path.

    ``compare`` names two recorded run ids; their statistical comparison is
    appended as a section.  Unknown run ids raise :class:`StoreError`.
    """
    sections = [
        _overview_section(store),
        _run_history_section(store),
        _pareto_sections(store),
        _benchmark_section(store),
        _verdict_section(store),
    ]
    if compare is not None:
        verdict = compare_runs(store, compare[0], compare[1], metric=metric, alpha=alpha)
        sections.append(_comparison_section(verdict))
    with open(_TEMPLATE_PATH) as handle:
        template = Template(handle.read())
    total_runs = len(store.run_ids())
    document = template.substitute(
        title="repro results report",
        subtitle=(
            f"{total_runs} recorded runs · {len(store.benchmark_names())} benchmark "
            f"trajectories · generated offline from "
            f"{html.escape(os.path.basename(store.path))}"
        ),
        body="\n".join(section for section in sections if section),
    )
    os.makedirs(out_dir, exist_ok=True)
    out_path = os.path.join(out_dir, "index.html")
    with open(out_path, "w") as handle:
        handle.write(document)
    return out_path


def payloads_in_report(html_text: str) -> Dict[str, str]:
    """Extract the verbatim payload islands back out of a generated report.

    The inverse of :func:`_payload_island` for the normal (script-island)
    case — used by tests and CI smoke checks to assert byte identity between
    the report and the recorded runs.
    """
    payloads: Dict[str, str] = {}
    marker = '<script type="application/json" class="run-payload" id="payload-'
    start = 0
    while True:
        begin = html_text.find(marker, start)
        if begin == -1:
            return payloads
        id_end = html_text.index('">', begin)
        run_id = html_text[begin + len(marker) : id_end]
        body_start = id_end + len('">\n')
        body_end = html_text.index("\n</script>", body_start)
        payloads[run_id] = html_text[body_start:body_end]
        start = body_end
