"""The longitudinal results store: every recorded run, in one SQLite file.

Every Job family (dse, plan, serve, experiments) used to emit one-shot
CSV/JSON that vanished the moment the terminal scrolled.  :class:`ResultStore`
is the persistence half of the fuzzbench-style experiment service the ROADMAP
calls for: runs are recorded **with provenance** (UTC timestamp, git SHA and
dirty flag, repro version, CLI argv, worker count, wall-clock duration, host
CPU count) and reports are generated offline from the store
(:mod:`repro.results.report`), never from the live run.

Two tables carry run data:

* ``runs``  — one row per recorded run: provenance plus the run's complete
  ``to_json()`` payload **verbatim**, so the round trip is lossless by
  construction (``load_run().payload`` is byte-identical to what the result
  serialised at record time);
* ``rows``  — the run's ``ResultTable.rows``, one JSON document per row, so
  reports and comparisons can query individual columns without parsing the
  nested payload.

Two more accumulate CI artifacts (:mod:`repro.results.ingest`):
``benchmarks`` (pytest-benchmark ``BENCH_*.json``) and ``verdicts``
(regression-gate outcomes from ``benchmarks/compare_to_baseline.py
--json-out``).

Two carry resumable-run journals (:class:`StoreCheckpoint`, the durable
:class:`~repro.engine.Checkpoint`): ``checkpoint_runs`` — one row per
checkpointed run, keyed by run id with the config signature, git SHA,
executor and a ``finished`` flag — and ``checkpoints`` — one **pickled**
row payload per completed item index (pickle, not JSON, so the replayed
rows are the original objects and a resumed run is byte-identical to an
uninterrupted one).  Each journal append is a single autocommitted INSERT:
a kill at any instant loses at most in-flight items, never tears a row.
A checkpointed run reserves its run id up front; the final ``record()``
claims that id and flips ``finished``, so interrupted runs are exactly the
``checkpoint_runs`` rows with no final payload — what ``repro runs list``
surfaces as ``resumable``.

Concurrency: the store opens SQLite in WAL mode with a generous busy
timeout, and run insertion takes an immediate transaction, so two processes
recording into the same database interleave safely (run ids stay unique and
sequential per kind).
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from hashlib import sha256
from typing import Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_DB_PATH",
    "ResultStore",
    "StoreCheckpoint",
    "StoreError",
    "StoredRun",
    "RunRecorder",
    "config_signature",
]

#: Where ``--record`` (with no argument) and ``repro report`` look by default.
DEFAULT_DB_PATH = os.path.join("results", "repro.db")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id        TEXT UNIQUE NOT NULL,
    kind          TEXT NOT NULL,
    signature     TEXT NOT NULL,
    timestamp_utc TEXT NOT NULL,
    git_sha       TEXT,
    git_dirty     INTEGER,
    repro_version TEXT NOT NULL,
    argv          TEXT,
    workers       INTEGER,
    duration_s    REAL NOT NULL,
    host_cpus     INTEGER NOT NULL,
    num_rows      INTEGER NOT NULL,
    payload       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS rows (
    run_id    TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    row_index INTEGER NOT NULL,
    payload   TEXT NOT NULL,
    PRIMARY KEY (run_id, row_index)
);
CREATE TABLE IF NOT EXISTS benchmarks (
    fullname     TEXT NOT NULL,
    recorded_utc TEXT NOT NULL,
    commit_sha   TEXT,
    commit_time  TEXT,
    mean_s       REAL NOT NULL,
    stddev_s     REAL,
    min_s        REAL,
    max_s        REAL,
    rounds       INTEGER,
    speedup      REAL,
    cpus         INTEGER,
    gate_floor   REAL,
    machine      TEXT,
    source       TEXT,
    PRIMARY KEY (fullname, recorded_utc)
);
CREATE TABLE IF NOT EXISTS verdicts (
    name           TEXT NOT NULL,
    recorded_utc   TEXT NOT NULL,
    verdict        TEXT NOT NULL,
    mode           TEXT,
    ratio          REAL,
    bound          REAL,
    skipped_reason TEXT,
    source         TEXT,
    PRIMARY KEY (name, recorded_utc)
);
CREATE TABLE IF NOT EXISTS checkpoint_runs (
    run_id      TEXT PRIMARY KEY,
    seq         INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    signature   TEXT NOT NULL,
    git_sha     TEXT,
    executor    TEXT,
    workers     INTEGER,
    started_utc TEXT NOT NULL,
    finished    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS checkpoints (
    run_id     TEXT NOT NULL REFERENCES checkpoint_runs(run_id) ON DELETE CASCADE,
    item_index INTEGER NOT NULL,
    payload    BLOB NOT NULL,
    PRIMARY KEY (run_id, item_index)
);
"""


class StoreError(Exception):
    """A results database is missing, corrupt, or was misused."""


def config_signature(payload: Dict) -> str:
    """A short stable signature for a run's configuration.

    Canonical JSON (sorted keys) hashed with SHA-256, truncated to 12 hex
    characters — enough to tell two sweeps apart in a run-history table,
    stable across processes and Python versions.
    """
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _git_info(cwd: Optional[str] = None) -> tuple:
    """``(sha, dirty)`` of the enclosing git checkout, or ``(None, None)``."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class StoredRun:
    """One run loaded back out of the store."""

    run_id: str
    kind: str
    signature: str
    timestamp_utc: str
    git_sha: Optional[str]
    git_dirty: Optional[bool]
    repro_version: str
    argv: Optional[List[str]]
    workers: Optional[int]
    duration_s: float
    host_cpus: int
    #: The run's ``ResultTable.rows``, decoded from the ``rows`` table.
    rows: List[Dict]
    #: The run's complete ``to_json()`` text, verbatim as recorded.
    payload: str

    def meta_row(self) -> Dict:
        """The flat dict the ``repro runs list`` table and reports render."""
        sha = (self.git_sha or "")[:10]
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "timestamp_utc": self.timestamp_utc,
            "git": sha + ("+dirty" if self.git_dirty else "") if sha else "?",
            "version": self.repro_version,
            "signature": self.signature[:12],
            "rows": len(self.rows),
            "workers": self.workers,
            "duration_s": round(self.duration_s, 3),
            "host_cpus": self.host_cpus,
            "status": "complete",
        }


@dataclass
class RunRecorder:
    """The handle ``ResultStore.record`` yields; callers attach one result.

    Either :meth:`add_table` (anything with ``rows`` and ``to_json()`` —
    every :class:`~repro.engine.ResultTable`) or :meth:`add_payload`
    (explicit rows plus serialised payload, used for
    :class:`~repro.serve.ServingReport` whose per-tenant rows are not a
    ``rows`` attribute).
    """

    kind: str
    signature: str
    argv: Optional[List[str]] = None
    workers: Optional[int] = None
    rows: Optional[List[Dict]] = None
    payload: Optional[str] = None
    #: Optional override for the recorded wall-clock duration.  The store
    #: measures the ``with`` block by default; callers that already timed
    #: the work elsewhere (the experiments CLI records several results from
    #: one suite run) set this instead.
    duration_s: Optional[float] = None
    #: Set by the store once the context manager commits.
    run_id: Optional[str] = field(default=None, init=False)

    def add_table(self, table) -> None:
        self.add_payload([dict(row) for row in table.rows], table.to_json())

    def add_payload(self, rows: List[Dict], payload: str) -> None:
        if self.payload is not None:
            raise StoreError("record() already holds a result for this run")
        self.rows = rows
        self.payload = payload


@dataclass
class StoreCheckpoint:
    """A durable run journal: the :class:`~repro.engine.Checkpoint` protocol
    backed by the store's ``checkpoints`` table.

    Rows are pickled (not JSON), so :meth:`completed_rows` replays the
    original row objects and a resumed run's output is byte-identical to an
    uninterrupted one.  Each :meth:`append` is one autocommitted INSERT —
    atomic per item, so a crash or kill never leaves a torn row behind.
    """

    store: "ResultStore"
    run_id: str
    kind: str
    signature: str

    def completed_rows(self) -> Dict[int, object]:
        cursor = self.store._connection.execute(
            "SELECT item_index, payload FROM checkpoints WHERE run_id = ?",
            (self.run_id,),
        )
        return {index: pickle.loads(payload) for index, payload in cursor}

    def append(self, index: int, row) -> None:
        self.store._connection.execute(
            "INSERT OR REPLACE INTO checkpoints (run_id, item_index, payload)"
            " VALUES (?, ?, ?)",
            (self.run_id, index, pickle.dumps(row, protocol=pickle.HIGHEST_PROTOCOL)),
        )

    def completed_count(self) -> int:
        return self.store._connection.execute(
            "SELECT COUNT(*) FROM checkpoints WHERE run_id = ?", (self.run_id,)
        ).fetchone()[0]


class ResultStore:
    """SQLite-backed store of runs, benchmark points and gate verdicts.

    Parameters
    ----------
    path:
        Database file (default ``results/repro.db``).  ``":memory:"`` is
        accepted for tests.
    create:
        When true (the default for recording paths), the parent directory
        and schema are created as needed.  When false (reporting paths), a
        missing file raises :class:`StoreError` instead of silently creating
        an empty database.
    """

    def __init__(self, path: str = DEFAULT_DB_PATH, create: bool = True) -> None:
        self.path = path
        if not create and path != ":memory:" and not os.path.exists(path):
            raise StoreError(f"no results database at {path!r}; record a run first")
        if create and path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        try:
            # Autocommit mode: transactions are managed explicitly (the
            # recorder's BEGIN IMMEDIATE), never implicitly by the driver.
            self._connection = sqlite3.connect(path, timeout=30.0, isolation_level=None)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA busy_timeout=30000")
            self._connection.execute("PRAGMA foreign_keys=ON")
            if create:
                with self._connection:
                    self._connection.executescript(_SCHEMA)
            # A probe query surfaces corrupt files and wrong schemas now,
            # with a uniform error, rather than mid-report.
            self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()
        except sqlite3.DatabaseError as error:
            raise StoreError(f"cannot open results database {path!r}: {error}")

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording ----------------------------------------------------------
    @contextmanager
    def record(
        self,
        kind: str,
        signature: str,
        argv: Optional[List[str]] = None,
        workers: Optional[int] = None,
        run_id: Optional[str] = None,
    ) -> Iterator[RunRecorder]:
        """Record one run: provenance captured here, result attached by the caller.

        Usage::

            with store.record("dse", signature, argv=sys.argv[1:]) as rec:
                result = SweepRunner(spec).run()
                rec.add_table(result)
            print(rec.run_id)

        The wall-clock duration is the time spent inside the ``with`` block.
        Nothing is written if the block raises — a crashed run leaves no
        partial row behind.

        ``run_id`` claims an id reserved by :meth:`begin_checkpoint`: the
        final payload lands under the id announced when the run started, and
        the checkpoint is marked finished in the same transaction.
        """
        recorder = RunRecorder(kind=kind, signature=signature, argv=argv, workers=workers)
        started = time.perf_counter()
        yield recorder
        duration_s = (
            recorder.duration_s
            if recorder.duration_s is not None
            else time.perf_counter() - started
        )
        if recorder.payload is None or recorder.rows is None:
            raise StoreError(
                "record() block finished without attaching a result "
                "(call add_table or add_payload on the recorder)"
            )
        from .. import __version__

        timestamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        git_sha, git_dirty = _git_info()
        connection = self._connection
        # BEGIN IMMEDIATE takes the write lock before reading MAX(id), so
        # concurrent recorders cannot mint the same run id.
        connection.execute("BEGIN IMMEDIATE")
        try:
            if run_id is None:
                next_id = self._next_seq()
                run_id = f"{kind}-{next_id}"
            else:
                reserved = connection.execute(
                    "SELECT seq FROM checkpoint_runs WHERE run_id = ?", (run_id,)
                ).fetchone()
                if reserved is None:
                    raise StoreError(
                        f"run id {run_id!r} was not reserved by begin_checkpoint"
                    )
                next_id = reserved[0]
            connection.execute(
                "INSERT INTO runs (id, run_id, kind, signature, timestamp_utc,"
                " git_sha, git_dirty, repro_version, argv, workers, duration_s,"
                " host_cpus, num_rows, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    next_id,
                    run_id,
                    kind,
                    signature,
                    timestamp,
                    git_sha,
                    None if git_dirty is None else int(git_dirty),
                    __version__,
                    None if argv is None else json.dumps(list(argv)),
                    workers,
                    duration_s,
                    _host_cpus(),
                    len(recorder.rows),
                    recorder.payload,
                ),
            )
            connection.executemany(
                "INSERT INTO rows (run_id, row_index, payload) VALUES (?, ?, ?)",
                [
                    (run_id, index, json.dumps(row, default=str))
                    for index, row in enumerate(recorder.rows)
                ],
            )
            connection.execute(
                "UPDATE checkpoint_runs SET finished = 1 WHERE run_id = ?",
                (run_id,),
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        recorder.run_id = run_id

    def _next_seq(self) -> int:
        """The next global run sequence number (call inside a transaction).

        Considers both recorded runs *and* reserved-but-unfinished
        checkpoints, so a concurrent plain ``record()`` can never mint an id
        a resumable run is still holding.
        """
        max_run = self._connection.execute(
            "SELECT COALESCE(MAX(id), 0) FROM runs"
        ).fetchone()[0]
        try:
            max_seq = self._connection.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM checkpoint_runs"
            ).fetchone()[0]
        except sqlite3.OperationalError:  # pre-checkpoint schema, create=False
            max_seq = 0
        return max(max_run, max_seq) + 1

    # -- checkpointed (resumable) runs --------------------------------------
    def begin_checkpoint(
        self,
        kind: str,
        signature: str,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> StoreCheckpoint:
        """Reserve a run id and open its journal.

        The returned :class:`StoreCheckpoint` plugs straight into
        ``Engine.run(job, checkpoint=...)``; pass its ``run_id`` to
        :meth:`record` once the run completes so the final payload claims
        the reserved id and the checkpoint is marked finished.
        """
        timestamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        git_sha, _ = _git_info()
        connection = self._connection
        connection.execute("BEGIN IMMEDIATE")
        try:
            seq = self._next_seq()
            run_id = f"{kind}-{seq}"
            connection.execute(
                "INSERT INTO checkpoint_runs (run_id, seq, kind, signature,"
                " git_sha, executor, workers, started_utc, finished)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
                (run_id, seq, kind, signature, git_sha, executor, workers, timestamp),
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        return StoreCheckpoint(store=self, run_id=run_id, kind=kind, signature=signature)

    def checkpoint_state(self, run_id: str) -> Optional[Dict]:
        """The checkpoint's metadata (plus completed-item count), or ``None``."""
        try:
            record = self._connection.execute(
                "SELECT run_id, seq, kind, signature, git_sha, executor, workers,"
                " started_utc, finished FROM checkpoint_runs WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        except sqlite3.OperationalError:  # pre-checkpoint schema, create=False
            return None
        if record is None:
            return None
        completed = self._connection.execute(
            "SELECT COUNT(*) FROM checkpoints WHERE run_id = ?", (run_id,)
        ).fetchone()[0]
        return {
            "run_id": record[0],
            "seq": record[1],
            "kind": record[2],
            "signature": record[3],
            "git_sha": record[4],
            "executor": record[5],
            "workers": record[6],
            "started_utc": record[7],
            "finished": bool(record[8]),
            "completed_items": completed,
        }

    def resume_checkpoint(self, run_id: str) -> StoreCheckpoint:
        """Reopen an existing checkpoint journal by run id."""
        state = self.checkpoint_state(run_id)
        if state is None:
            raise StoreError(f"no checkpointed run {run_id!r} in {self.path}")
        return StoreCheckpoint(
            store=self,
            run_id=run_id,
            kind=state["kind"],
            signature=state["signature"],
        )

    def finish_checkpoint(self, run_id: str) -> None:
        """Mark a checkpoint finished without claiming its id via record()."""
        self._connection.execute(
            "UPDATE checkpoint_runs SET finished = 1 WHERE run_id = ?", (run_id,)
        )

    def resumable_runs(self, kind: Optional[str] = None) -> List[Dict]:
        """Interrupted runs (journal present, no final payload), oldest first.

        Rows are shaped like :meth:`StoredRun.meta_row` so ``repro runs
        list`` renders complete and resumable runs in one table.
        """
        try:
            cursor = self._connection.execute(
                "SELECT run_id, kind, signature, git_sha, executor, workers,"
                " started_utc FROM checkpoint_runs WHERE finished = 0"
                + ("" if kind is None else " AND kind = ?")
                + " ORDER BY seq",
                () if kind is None else (kind,),
            )
        except sqlite3.OperationalError:  # pre-checkpoint schema, create=False
            return []
        rows = []
        for run_id, run_kind, signature, git_sha, executor, workers, started in cursor:
            completed = self._connection.execute(
                "SELECT COUNT(*) FROM checkpoints WHERE run_id = ?", (run_id,)
            ).fetchone()[0]
            rows.append(
                {
                    "run_id": run_id,
                    "kind": run_kind,
                    "timestamp_utc": started,
                    "git": (git_sha or "")[:10] or "?",
                    "version": "?",
                    "signature": signature[:12],
                    "rows": completed,
                    "workers": workers,
                    "duration_s": None,
                    "host_cpus": None,
                    "status": "resumable",
                }
            )
        return rows

    # -- loading ------------------------------------------------------------
    def load_run(self, run_id: str) -> StoredRun:
        """The recorded run, rows decoded, payload verbatim."""
        cursor = self._connection.execute(
            "SELECT run_id, kind, signature, timestamp_utc, git_sha, git_dirty,"
            " repro_version, argv, workers, duration_s, host_cpus, payload"
            " FROM runs WHERE run_id = ?",
            (run_id,),
        )
        record = cursor.fetchone()
        if record is None:
            raise StoreError(f"no run {run_id!r} in {self.path}")
        rows = [
            json.loads(payload)
            for (payload,) in self._connection.execute(
                "SELECT payload FROM rows WHERE run_id = ? ORDER BY row_index",
                (run_id,),
            )
        ]
        return StoredRun(
            run_id=record[0],
            kind=record[1],
            signature=record[2],
            timestamp_utc=record[3],
            git_sha=record[4],
            git_dirty=None if record[5] is None else bool(record[5]),
            repro_version=record[6],
            argv=None if record[7] is None else json.loads(record[7]),
            workers=record[8],
            duration_s=record[9],
            host_cpus=record[10],
            rows=rows,
            payload=record[11],
        )

    def run_ids(self, kind: Optional[str] = None) -> List[str]:
        """Recorded run ids in insertion order, optionally one kind only."""
        if kind is None:
            cursor = self._connection.execute("SELECT run_id FROM runs ORDER BY id")
        else:
            cursor = self._connection.execute(
                "SELECT run_id FROM runs WHERE kind = ? ORDER BY id", (kind,)
            )
        return [run_id for (run_id,) in cursor]

    def kinds(self) -> List[str]:
        """Distinct run kinds, alphabetical (deterministic report order)."""
        cursor = self._connection.execute("SELECT DISTINCT kind FROM runs ORDER BY kind")
        return [kind for (kind,) in cursor]

    def runs(self, kind: Optional[str] = None) -> List[StoredRun]:
        """Every recorded run (optionally one kind), in insertion order."""
        return [self.load_run(run_id) for run_id in self.run_ids(kind)]

    # -- CI artifact queries (populated by repro.results.ingest) ------------
    def benchmark_names(self) -> List[str]:
        cursor = self._connection.execute(
            "SELECT DISTINCT fullname FROM benchmarks ORDER BY fullname"
        )
        return [name for (name,) in cursor]

    def benchmark_trajectory(self, fullname: str) -> List[Dict]:
        """One benchmark's points ordered by recording time (the trajectory)."""
        cursor = self._connection.execute(
            "SELECT recorded_utc, commit_sha, mean_s, stddev_s, speedup, cpus,"
            " gate_floor, machine FROM benchmarks WHERE fullname = ?"
            " ORDER BY recorded_utc",
            (fullname,),
        )
        return [
            {
                "recorded_utc": recorded,
                "commit_sha": commit,
                "mean_s": mean_s,
                "stddev_s": stddev_s,
                "speedup": speedup,
                "cpus": cpus,
                "gate_floor": gate_floor,
                "machine": machine,
            }
            for recorded, commit, mean_s, stddev_s, speedup, cpus, gate_floor, machine in cursor
        ]

    def verdict_rows(self) -> List[Dict]:
        """Every ingested gate verdict, newest first."""
        cursor = self._connection.execute(
            "SELECT recorded_utc, name, verdict, mode, ratio, bound, skipped_reason"
            " FROM verdicts ORDER BY recorded_utc DESC, name"
        )
        return [
            {
                "recorded_utc": recorded,
                "benchmark": name,
                "verdict": verdict,
                "mode": mode,
                "ratio": ratio,
                "bound": bound,
                "skipped_reason": reason,
            }
            for recorded, name, verdict, mode, ratio, bound, reason in cursor
        ]
