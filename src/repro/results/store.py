"""The longitudinal results store: every recorded run, in one SQLite file.

Every Job family (dse, plan, serve, experiments) used to emit one-shot
CSV/JSON that vanished the moment the terminal scrolled.  :class:`ResultStore`
is the persistence half of the fuzzbench-style experiment service the ROADMAP
calls for: runs are recorded **with provenance** (UTC timestamp, git SHA and
dirty flag, repro version, CLI argv, worker count, wall-clock duration, host
CPU count) and reports are generated offline from the store
(:mod:`repro.results.report`), never from the live run.

Two tables carry run data:

* ``runs``  — one row per recorded run: provenance plus the run's complete
  ``to_json()`` payload **verbatim**, so the round trip is lossless by
  construction (``load_run().payload`` is byte-identical to what the result
  serialised at record time);
* ``rows``  — the run's ``ResultTable.rows``, one JSON document per row, so
  reports and comparisons can query individual columns without parsing the
  nested payload.

Two more accumulate CI artifacts (:mod:`repro.results.ingest`):
``benchmarks`` (pytest-benchmark ``BENCH_*.json``) and ``verdicts``
(regression-gate outcomes from ``benchmarks/compare_to_baseline.py
--json-out``).

Concurrency: the store opens SQLite in WAL mode with a generous busy
timeout, and run insertion takes an immediate transaction, so two processes
recording into the same database interleave safely (run ids stay unique and
sequential per kind).
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from hashlib import sha256
from typing import Dict, Iterator, List, Optional

__all__ = [
    "DEFAULT_DB_PATH",
    "ResultStore",
    "StoreError",
    "StoredRun",
    "RunRecorder",
    "config_signature",
]

#: Where ``--record`` (with no argument) and ``repro report`` look by default.
DEFAULT_DB_PATH = os.path.join("results", "repro.db")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id        TEXT UNIQUE NOT NULL,
    kind          TEXT NOT NULL,
    signature     TEXT NOT NULL,
    timestamp_utc TEXT NOT NULL,
    git_sha       TEXT,
    git_dirty     INTEGER,
    repro_version TEXT NOT NULL,
    argv          TEXT,
    workers       INTEGER,
    duration_s    REAL NOT NULL,
    host_cpus     INTEGER NOT NULL,
    num_rows      INTEGER NOT NULL,
    payload       TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS rows (
    run_id    TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    row_index INTEGER NOT NULL,
    payload   TEXT NOT NULL,
    PRIMARY KEY (run_id, row_index)
);
CREATE TABLE IF NOT EXISTS benchmarks (
    fullname     TEXT NOT NULL,
    recorded_utc TEXT NOT NULL,
    commit_sha   TEXT,
    commit_time  TEXT,
    mean_s       REAL NOT NULL,
    stddev_s     REAL,
    min_s        REAL,
    max_s        REAL,
    rounds       INTEGER,
    speedup      REAL,
    cpus         INTEGER,
    gate_floor   REAL,
    machine      TEXT,
    source       TEXT,
    PRIMARY KEY (fullname, recorded_utc)
);
CREATE TABLE IF NOT EXISTS verdicts (
    name           TEXT NOT NULL,
    recorded_utc   TEXT NOT NULL,
    verdict        TEXT NOT NULL,
    mode           TEXT,
    ratio          REAL,
    bound          REAL,
    skipped_reason TEXT,
    source         TEXT,
    PRIMARY KEY (name, recorded_utc)
);
"""


class StoreError(Exception):
    """A results database is missing, corrupt, or was misused."""


def config_signature(payload: Dict) -> str:
    """A short stable signature for a run's configuration.

    Canonical JSON (sorted keys) hashed with SHA-256, truncated to 12 hex
    characters — enough to tell two sweeps apart in a run-history table,
    stable across processes and Python versions.
    """
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return sha256(canonical.encode("utf-8")).hexdigest()[:12]


def _git_info(cwd: Optional[str] = None) -> tuple:
    """``(sha, dirty)`` of the enclosing git checkout, or ``(None, None)``."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if sha.returncode != 0:
            return None, None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return sha.stdout.strip(), dirty
    except (OSError, subprocess.SubprocessError):
        return None, None


def _host_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class StoredRun:
    """One run loaded back out of the store."""

    run_id: str
    kind: str
    signature: str
    timestamp_utc: str
    git_sha: Optional[str]
    git_dirty: Optional[bool]
    repro_version: str
    argv: Optional[List[str]]
    workers: Optional[int]
    duration_s: float
    host_cpus: int
    #: The run's ``ResultTable.rows``, decoded from the ``rows`` table.
    rows: List[Dict]
    #: The run's complete ``to_json()`` text, verbatim as recorded.
    payload: str

    def meta_row(self) -> Dict:
        """The flat dict the ``repro runs list`` table and reports render."""
        sha = (self.git_sha or "")[:10]
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "timestamp_utc": self.timestamp_utc,
            "git": sha + ("+dirty" if self.git_dirty else "") if sha else "?",
            "version": self.repro_version,
            "signature": self.signature[:12],
            "rows": len(self.rows),
            "workers": self.workers,
            "duration_s": round(self.duration_s, 3),
            "host_cpus": self.host_cpus,
        }


@dataclass
class RunRecorder:
    """The handle ``ResultStore.record`` yields; callers attach one result.

    Either :meth:`add_table` (anything with ``rows`` and ``to_json()`` —
    every :class:`~repro.engine.ResultTable`) or :meth:`add_payload`
    (explicit rows plus serialised payload, used for
    :class:`~repro.serve.ServingReport` whose per-tenant rows are not a
    ``rows`` attribute).
    """

    kind: str
    signature: str
    argv: Optional[List[str]] = None
    workers: Optional[int] = None
    rows: Optional[List[Dict]] = None
    payload: Optional[str] = None
    #: Optional override for the recorded wall-clock duration.  The store
    #: measures the ``with`` block by default; callers that already timed
    #: the work elsewhere (the experiments CLI records several results from
    #: one suite run) set this instead.
    duration_s: Optional[float] = None
    #: Set by the store once the context manager commits.
    run_id: Optional[str] = field(default=None, init=False)

    def add_table(self, table) -> None:
        self.add_payload([dict(row) for row in table.rows], table.to_json())

    def add_payload(self, rows: List[Dict], payload: str) -> None:
        if self.payload is not None:
            raise StoreError("record() already holds a result for this run")
        self.rows = rows
        self.payload = payload


class ResultStore:
    """SQLite-backed store of runs, benchmark points and gate verdicts.

    Parameters
    ----------
    path:
        Database file (default ``results/repro.db``).  ``":memory:"`` is
        accepted for tests.
    create:
        When true (the default for recording paths), the parent directory
        and schema are created as needed.  When false (reporting paths), a
        missing file raises :class:`StoreError` instead of silently creating
        an empty database.
    """

    def __init__(self, path: str = DEFAULT_DB_PATH, create: bool = True) -> None:
        self.path = path
        if not create and path != ":memory:" and not os.path.exists(path):
            raise StoreError(f"no results database at {path!r}; record a run first")
        if create and path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        try:
            # Autocommit mode: transactions are managed explicitly (the
            # recorder's BEGIN IMMEDIATE), never implicitly by the driver.
            self._connection = sqlite3.connect(path, timeout=30.0, isolation_level=None)
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA busy_timeout=30000")
            self._connection.execute("PRAGMA foreign_keys=ON")
            if create:
                with self._connection:
                    self._connection.executescript(_SCHEMA)
            # A probe query surfaces corrupt files and wrong schemas now,
            # with a uniform error, rather than mid-report.
            self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()
        except sqlite3.DatabaseError as error:
            raise StoreError(f"cannot open results database {path!r}: {error}")

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording ----------------------------------------------------------
    @contextmanager
    def record(
        self,
        kind: str,
        signature: str,
        argv: Optional[List[str]] = None,
        workers: Optional[int] = None,
    ) -> Iterator[RunRecorder]:
        """Record one run: provenance captured here, result attached by the caller.

        Usage::

            with store.record("dse", signature, argv=sys.argv[1:]) as rec:
                result = SweepRunner(spec).run()
                rec.add_table(result)
            print(rec.run_id)

        The wall-clock duration is the time spent inside the ``with`` block.
        Nothing is written if the block raises — a crashed run leaves no
        partial row behind.
        """
        recorder = RunRecorder(kind=kind, signature=signature, argv=argv, workers=workers)
        started = time.perf_counter()
        yield recorder
        duration_s = (
            recorder.duration_s
            if recorder.duration_s is not None
            else time.perf_counter() - started
        )
        if recorder.payload is None or recorder.rows is None:
            raise StoreError(
                "record() block finished without attaching a result "
                "(call add_table or add_payload on the recorder)"
            )
        from .. import __version__

        timestamp = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        git_sha, git_dirty = _git_info()
        connection = self._connection
        # BEGIN IMMEDIATE takes the write lock before reading MAX(id), so
        # concurrent recorders cannot mint the same run id.
        connection.execute("BEGIN IMMEDIATE")
        try:
            next_id = connection.execute(
                "SELECT COALESCE(MAX(id), 0) + 1 FROM runs"
            ).fetchone()[0]
            run_id = f"{kind}-{next_id}"
            connection.execute(
                "INSERT INTO runs (run_id, kind, signature, timestamp_utc, git_sha,"
                " git_dirty, repro_version, argv, workers, duration_s, host_cpus,"
                " num_rows, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    kind,
                    signature,
                    timestamp,
                    git_sha,
                    None if git_dirty is None else int(git_dirty),
                    __version__,
                    None if argv is None else json.dumps(list(argv)),
                    workers,
                    duration_s,
                    _host_cpus(),
                    len(recorder.rows),
                    recorder.payload,
                ),
            )
            connection.executemany(
                "INSERT INTO rows (run_id, row_index, payload) VALUES (?, ?, ?)",
                [
                    (run_id, index, json.dumps(row, default=str))
                    for index, row in enumerate(recorder.rows)
                ],
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise
        recorder.run_id = run_id

    # -- loading ------------------------------------------------------------
    def load_run(self, run_id: str) -> StoredRun:
        """The recorded run, rows decoded, payload verbatim."""
        cursor = self._connection.execute(
            "SELECT run_id, kind, signature, timestamp_utc, git_sha, git_dirty,"
            " repro_version, argv, workers, duration_s, host_cpus, payload"
            " FROM runs WHERE run_id = ?",
            (run_id,),
        )
        record = cursor.fetchone()
        if record is None:
            raise StoreError(f"no run {run_id!r} in {self.path}")
        rows = [
            json.loads(payload)
            for (payload,) in self._connection.execute(
                "SELECT payload FROM rows WHERE run_id = ? ORDER BY row_index",
                (run_id,),
            )
        ]
        return StoredRun(
            run_id=record[0],
            kind=record[1],
            signature=record[2],
            timestamp_utc=record[3],
            git_sha=record[4],
            git_dirty=None if record[5] is None else bool(record[5]),
            repro_version=record[6],
            argv=None if record[7] is None else json.loads(record[7]),
            workers=record[8],
            duration_s=record[9],
            host_cpus=record[10],
            rows=rows,
            payload=record[11],
        )

    def run_ids(self, kind: Optional[str] = None) -> List[str]:
        """Recorded run ids in insertion order, optionally one kind only."""
        if kind is None:
            cursor = self._connection.execute("SELECT run_id FROM runs ORDER BY id")
        else:
            cursor = self._connection.execute(
                "SELECT run_id FROM runs WHERE kind = ? ORDER BY id", (kind,)
            )
        return [run_id for (run_id,) in cursor]

    def kinds(self) -> List[str]:
        """Distinct run kinds, alphabetical (deterministic report order)."""
        cursor = self._connection.execute("SELECT DISTINCT kind FROM runs ORDER BY kind")
        return [kind for (kind,) in cursor]

    def runs(self, kind: Optional[str] = None) -> List[StoredRun]:
        """Every recorded run (optionally one kind), in insertion order."""
        return [self.load_run(run_id) for run_id in self.run_ids(kind)]

    # -- CI artifact queries (populated by repro.results.ingest) ------------
    def benchmark_names(self) -> List[str]:
        cursor = self._connection.execute(
            "SELECT DISTINCT fullname FROM benchmarks ORDER BY fullname"
        )
        return [name for (name,) in cursor]

    def benchmark_trajectory(self, fullname: str) -> List[Dict]:
        """One benchmark's points ordered by recording time (the trajectory)."""
        cursor = self._connection.execute(
            "SELECT recorded_utc, commit_sha, mean_s, stddev_s, speedup, cpus,"
            " gate_floor, machine FROM benchmarks WHERE fullname = ?"
            " ORDER BY recorded_utc",
            (fullname,),
        )
        return [
            {
                "recorded_utc": recorded,
                "commit_sha": commit,
                "mean_s": mean_s,
                "stddev_s": stddev_s,
                "speedup": speedup,
                "cpus": cpus,
                "gate_floor": gate_floor,
                "machine": machine,
            }
            for recorded, commit, mean_s, stddev_s, speedup, cpus, gate_floor, machine in cursor
        ]

    def verdict_rows(self) -> List[Dict]:
        """Every ingested gate verdict, newest first."""
        cursor = self._connection.execute(
            "SELECT recorded_utc, name, verdict, mode, ratio, bound, skipped_reason"
            " FROM verdicts ORDER BY recorded_utc DESC, name"
        )
        return [
            {
                "recorded_utc": recorded,
                "benchmark": name,
                "verdict": verdict,
                "mode": mode,
                "ratio": ratio,
                "bound": bound,
                "skipped_reason": reason,
            }
            for recorded, name, verdict, mode, ratio, bound, reason in cursor
        ]
