"""Statistical tests for run-vs-run comparisons, stdlib + numpy only.

Modelled on fuzzbench's ``analysis/stat_tests.py``, which judges fuzzer
pairs with the Mann-Whitney U test; scipy is not a dependency of this repo,
so the test is implemented directly:

* :func:`mann_whitney_u` — two-sided Mann-Whitney U with average ranks,
  tie-corrected variance and continuity correction (the same normal
  approximation ``scipy.stats.mannwhitneyu(use_continuity=True,
  method="asymptotic")`` uses — adequate for the >=8-point samples reports
  compare, and exact determinism matters more here than small-sample
  exactness);
* :func:`bootstrap_ci` — seeded percentile bootstrap confidence interval
  for the mean, deterministic for a fixed seed;
* :func:`compare_samples` — the verdict dict the report renders: descriptive
  stats per side, the U test, bootstrap CIs, and a significance verdict at
  the requested alpha.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["MannWhitneyResult", "mann_whitney_u", "bootstrap_ci", "compare_samples"]


@dataclass(frozen=True)
class MannWhitneyResult:
    """Two-sided Mann-Whitney U outcome for samples ``a`` and ``b``."""

    u_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks 1..n with ties sharing their average rank (midranks)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(1, len(values) + 1, dtype=float)
    # Replace each tie group's ranks with the group's mean rank.
    sorted_values = values[order]
    index = 0
    while index < len(sorted_values):
        upper = index
        while upper + 1 < len(sorted_values) and sorted_values[upper + 1] == sorted_values[index]:
            upper += 1
        if upper > index:
            ranks[order[index : upper + 1]] = (index + upper) / 2.0 + 1.0
        index = upper + 1
    return ranks


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test (normal approximation, tie-corrected)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    combined = np.concatenate([a, b])
    ranks = _average_ranks(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1
    u = min(u1, u2)

    n = n1 + n2
    mean_u = n1 * n2 / 2.0
    # Tie correction: subtract sum(t^3 - t) over tie groups from the variance.
    _, counts = np.unique(combined, return_counts=True)
    tie_term = float(((counts**3) - counts).sum())
    variance = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0:
        # Every value identical on both sides: no evidence of a difference.
        return MannWhitneyResult(u_statistic=u, p_value=1.0)
    z = (u - mean_u + 0.5) / math.sqrt(variance)  # continuity correction
    p_value = min(1.0, math.erfc(-z / math.sqrt(2.0)))  # 2 * Phi(z), z <= 0
    return MannWhitneyResult(u_statistic=u, p_value=p_value)


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Dict[str, float]:
    """Seeded percentile-bootstrap confidence interval for the mean."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("bootstrap_ci needs a non-empty sample")
    rng = np.random.default_rng(seed)
    samples = rng.integers(0, len(values), size=(resamples, len(values)))
    means = values[samples].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return {
        "mean": float(values.mean()),
        "ci_low": float(low),
        "ci_high": float(high),
        "confidence": confidence,
    }


def compare_samples(
    a: Sequence[float],
    b: Sequence[float],
    alpha: float = 0.05,
    seed: int = 0,
) -> Dict:
    """The full comparison verdict between two metric samples.

    Degenerate samples (a single point on either side) skip the U test —
    one observation carries no rank information — and report
    ``significant=None`` (unknown), never a fabricated p-value.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    verdict: Dict = {
        "n_a": int(len(a)),
        "n_b": int(len(b)),
        "a": bootstrap_ci(a, seed=seed),
        "b": bootstrap_ci(b, seed=seed),
        "alpha": alpha,
    }
    if len(a) >= 2 and len(b) >= 2:
        test = mann_whitney_u(a, b)
        verdict["u_statistic"] = test.u_statistic
        verdict["p_value"] = test.p_value
        verdict["significant"] = test.significant(alpha)
    else:
        verdict["u_statistic"] = None
        verdict["p_value"] = None
        verdict["significant"] = None
    return verdict
