"""Ingest CI benchmark artifacts into the results store.

The CI ``bench`` job produces two artifact families per commit:

* pytest-benchmark ``BENCH_*.json`` files — one measured point per
  benchmark (mean/stddev wall clock, plus the repo's ``extra_info``
  conventions: ``speedup``, ``cpus``, ``gate_floor``);
* ``VERDICTS.json`` from ``benchmarks/compare_to_baseline.py --json-out`` —
  the regression gate's machine-readable per-benchmark outcome.

Ingesting them turns disconnected per-build artifacts into one longitudinal
trajectory (the fuzzbench model: measurements land in the store; reports are
generated from the store).  Ingestion is **idempotent**: a benchmark point is
keyed on ``(fullname, recorded_utc)`` and a verdict on
``(name, recorded_utc)``, both taken from the artifact itself — re-running
CI ingestion over the same files replaces identical rows instead of
duplicating the trajectory.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .store import ResultStore, StoreError

__all__ = ["ingest_benchmark_file", "ingest_benchmark_files", "ingest_verdicts_file"]


def _load_json(path: str) -> Dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as error:
        raise StoreError(f"cannot read {path!r}: {error}")
    except json.JSONDecodeError as error:
        raise StoreError(f"{path!r} is not valid JSON: {error}")


def ingest_benchmark_file(store: ResultStore, path: str) -> int:
    """Ingest one pytest-benchmark JSON file; returns benchmarks ingested."""
    payload = _load_json(path)
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise StoreError(f"{path!r} is not a pytest-benchmark JSON (no 'benchmarks')")
    recorded = payload.get("datetime") or ""
    commit_info = payload.get("commit_info") or {}
    machine = (payload.get("machine_info") or {}).get("node")
    ingested = 0
    connection = store._connection
    connection.execute("BEGIN IMMEDIATE")
    try:
        for bench in benchmarks:
            stats = bench.get("stats") or {}
            extra = bench.get("extra_info") or {}
            connection.execute(
                "INSERT OR REPLACE INTO benchmarks (fullname, recorded_utc,"
                " commit_sha, commit_time, mean_s, stddev_s, min_s, max_s,"
                " rounds, speedup, cpus, gate_floor, machine, source)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    bench.get("fullname") or bench.get("name"),
                    recorded,
                    commit_info.get("id"),
                    commit_info.get("time"),
                    stats.get("mean"),
                    stats.get("stddev"),
                    stats.get("min"),
                    stats.get("max"),
                    stats.get("rounds"),
                    extra.get("speedup"),
                    extra.get("cpus"),
                    extra.get("gate_floor"),
                    machine,
                    path,
                ),
            )
            ingested += 1
        connection.commit()
    except BaseException:
        connection.rollback()
        raise
    return ingested


def ingest_benchmark_files(store: ResultStore, paths: List[str]) -> int:
    """Ingest several ``BENCH_*.json`` files; returns total benchmarks."""
    return sum(ingest_benchmark_file(store, path) for path in paths)


def ingest_verdicts_file(store: ResultStore, path: str) -> int:
    """Ingest a ``compare_to_baseline.py --json-out`` verdicts file."""
    payload = _load_json(path)
    verdicts = payload.get("verdicts")
    if not isinstance(verdicts, list):
        raise StoreError(f"{path!r} is not a verdicts JSON (no 'verdicts')")
    recorded = payload.get("recorded_utc") or ""
    ingested = 0
    connection = store._connection
    connection.execute("BEGIN IMMEDIATE")
    try:
        for verdict in verdicts:
            connection.execute(
                "INSERT OR REPLACE INTO verdicts (name, recorded_utc, verdict,"
                " mode, ratio, bound, skipped_reason, source)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    verdict.get("name"),
                    recorded,
                    verdict.get("verdict"),
                    verdict.get("mode"),
                    verdict.get("ratio"),
                    verdict.get("bound"),
                    verdict.get("skipped_reason"),
                    path,
                ),
            )
            ingested += 1
        connection.commit()
    except BaseException:
        connection.rollback()
        raise
    return ingested
