"""The longitudinal results store and reporting service.

Turns one-shot run outputs into an operated record, fuzzbench-style: runs
recorded with provenance into SQLite (:mod:`~repro.results.store`), CI
benchmark artifacts accumulated into trajectories
(:mod:`~repro.results.ingest`), and self-contained static HTML reports with
statistical run-vs-run comparisons generated offline from the store
(:mod:`~repro.results.report`, :mod:`~repro.results.stats`).

Entry points:

* ``repro dse|plan|serve|experiments --record [DB]`` — record the run;
* ``repro runs list|show`` — inspect the store from the CLI;
* ``repro report [--db PATH] [--out DIR] [--compare A B]`` — generate HTML.
"""

from .ingest import ingest_benchmark_file, ingest_benchmark_files, ingest_verdicts_file
from .report import (
    DEFAULT_COMPARE_METRICS,
    compare_runs,
    generate_report,
    payloads_in_report,
    render_comparison_text,
)
from .stats import MannWhitneyResult, bootstrap_ci, compare_samples, mann_whitney_u
from .store import (
    DEFAULT_DB_PATH,
    ResultStore,
    RunRecorder,
    StoreCheckpoint,
    StoredRun,
    StoreError,
    config_signature,
)

__all__ = [
    "DEFAULT_DB_PATH",
    "DEFAULT_COMPARE_METRICS",
    "ResultStore",
    "RunRecorder",
    "StoreCheckpoint",
    "StoredRun",
    "StoreError",
    "config_signature",
    "ingest_benchmark_file",
    "ingest_benchmark_files",
    "ingest_verdicts_file",
    "generate_report",
    "compare_runs",
    "render_comparison_text",
    "payloads_in_report",
    "MannWhitneyResult",
    "mann_whitney_u",
    "bootstrap_ci",
    "compare_samples",
]
