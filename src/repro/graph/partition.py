"""Destination-node bank partitioning and workload-imbalance analysis.

FlowGNN assigns every edge to the MP unit that owns the edge's *destination*
node.  Because the assignment is a fixed function of the node id (no graph
preprocessing allowed), some MP units may receive more edges than others.
Table VII of the paper quantifies this imbalance — defined as the largest
difference in per-unit edge counts as a percentage of the total edge count —
and finds it stays below ~9% across all datasets and ``P_edge`` values.

Two assignment policies are provided:

* ``modulo`` — unit ``dst % P_edge`` owns the edge.  This is the hardware
  policy: it needs no knowledge of the graph size and interleaves node ids
  across banks, which is what an HLS memory partition does.
* ``contiguous`` — unit ``dst // ceil(N / P_edge)`` owns the edge.  Included
  to show why interleaving matters (contiguous assignment performs much worse
  on graphs whose node ordering correlates with degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from .graph import Graph

__all__ = [
    "BankPartition",
    "partition_by_destination",
    "workload_imbalance",
    "imbalance_table",
]


@dataclass(frozen=True)
class BankPartition:
    """Assignment of every edge (and destination node) to an MP-unit bank."""

    num_banks: int
    policy: str
    edge_to_bank: np.ndarray
    node_to_bank: np.ndarray

    def edges_per_bank(self) -> np.ndarray:
        """Number of edges owned by each bank (the MP workload)."""
        return np.bincount(self.edge_to_bank, minlength=self.num_banks).astype(
            np.int64
        )

    def nodes_per_bank(self) -> np.ndarray:
        """Number of destination nodes owned by each bank."""
        return np.bincount(self.node_to_bank, minlength=self.num_banks).astype(
            np.int64
        )

    def bank_edge_ids(self, bank: int) -> np.ndarray:
        """Indices (into the COO list) of the edges owned by ``bank``."""
        return np.nonzero(self.edge_to_bank == bank)[0]


def _node_bank_assignment(num_nodes: int, num_banks: int, policy: str) -> np.ndarray:
    nodes = np.arange(num_nodes, dtype=np.int64)
    if policy == "modulo":
        return nodes % num_banks
    if policy == "contiguous":
        bank_size = int(np.ceil(num_nodes / num_banks)) if num_nodes else 1
        return np.minimum(nodes // bank_size, num_banks - 1)
    raise ValueError(f"unknown partition policy {policy!r}")


def partition_by_destination(
    graph: Graph, num_banks: int, policy: str = "modulo"
) -> BankPartition:
    """Assign each edge to the bank owning its destination node."""
    if num_banks < 1:
        raise ValueError("num_banks must be >= 1")
    node_to_bank = _node_bank_assignment(graph.num_nodes, num_banks, policy)
    if graph.num_edges:
        edge_to_bank = node_to_bank[graph.destinations]
    else:
        edge_to_bank = np.zeros(0, dtype=np.int64)
    return BankPartition(
        num_banks=num_banks,
        policy=policy,
        edge_to_bank=edge_to_bank,
        node_to_bank=node_to_bank,
    )


def workload_imbalance(graph: Graph, num_banks: int, policy: str = "modulo") -> float:
    """Workload imbalance as defined in Table VII of the paper.

    Returns ``(max_bank_edges - min_bank_edges) / total_edges``, i.e. the
    largest difference in workloads between any two MP units as a fraction of
    the total workload.  0.0 means perfectly balanced; 1.0 means one unit
    handles everything.
    """
    if graph.num_edges == 0:
        return 0.0
    partition = partition_by_destination(graph, num_banks, policy)
    per_bank = partition.edges_per_bank()
    return float(per_bank.max() - per_bank.min()) / float(graph.num_edges)


def dataset_workload_imbalance(
    graphs: Sequence[Graph], num_banks: int, policy: str = "modulo"
) -> float:
    """Average workload imbalance over a collection of graphs.

    The paper streams thousands of small graphs per dataset; the table entry
    is the mean per-graph imbalance.
    """
    if not graphs:
        return 0.0
    values = [workload_imbalance(g, num_banks, policy) for g in graphs]
    return float(np.mean(values))


def imbalance_table(
    datasets: Dict[str, Sequence[Graph]],
    edge_parallelism_values: Sequence[int] = (2, 4, 8, 16, 32, 64),
    policy: str = "modulo",
) -> Dict[int, Dict[str, float]]:
    """Reproduce the structure of Table VII.

    Returns ``{P_edge: {dataset_name: imbalance}}`` with imbalance expressed
    as a fraction (multiply by 100 for the paper's percentage format).
    """
    table: Dict[int, Dict[str, float]] = {}
    for p_edge in edge_parallelism_values:
        row: Dict[str, float] = {}
        for name, graphs in datasets.items():
            row[name] = dataset_workload_imbalance(list(graphs), p_edge, policy)
        table[p_edge] = row
    return table
