"""Graph substrate: data structures, formats, generators and partitioning."""

from .graph import Graph, GraphValidationError
from .formats import CSRMatrix, CSCMatrix, to_csr, to_csc, to_coo, from_dense
from .batch import BatchedGraph, batch_graphs, unbatch_node_values, iter_batches
from .generators import (
    erdos_renyi_graph,
    barabasi_albert_graph,
    powerlaw_cluster_graph,
    knn_point_cloud_graph,
    molecule_like_graph,
    random_features,
)
from .partition import (
    BankPartition,
    partition_by_destination,
    workload_imbalance,
    imbalance_table,
)
from .streaming import (
    GraphStream,
    StreamStatistics,
    queue_depths_at_arrivals,
    simulate_stream_consumption,
)

__all__ = [
    "Graph",
    "GraphValidationError",
    "CSRMatrix",
    "CSCMatrix",
    "to_csr",
    "to_csc",
    "to_coo",
    "from_dense",
    "BatchedGraph",
    "batch_graphs",
    "unbatch_node_values",
    "iter_batches",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "knn_point_cloud_graph",
    "molecule_like_graph",
    "random_features",
    "BankPartition",
    "partition_by_destination",
    "workload_imbalance",
    "imbalance_table",
    "GraphStream",
    "StreamStatistics",
    "queue_depths_at_arrivals",
    "simulate_stream_consumption",
]
