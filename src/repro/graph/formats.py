"""Sparse adjacency formats: COO, CSR and CSC.

The FlowGNN baseline dataflow (Sec. III-C of the paper) stores the graph in
CSR so that the MP unit can walk a node's out-neighbour list after its node
transformation finishes; the MP-to-NT dataflow (used for GAT) instead needs
CSC so that a unit can walk a node's *in*-neighbour list.  These conversions
are cheap linear passes — they are the only per-graph "preparation" the
accelerator performs and they are counted in its latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .graph import Graph

__all__ = ["CSRMatrix", "CSCMatrix", "to_csr", "to_csc", "to_coo", "from_dense"]


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed sparse row adjacency.

    ``indptr[i]:indptr[i+1]`` indexes the out-edges of node ``i`` inside
    ``indices`` (destination ids) and ``edge_ids`` (position of the edge in
    the original COO list, used to look up edge features).
    """

    num_nodes: int
    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def row(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(destinations, edge_ids)`` for the out-edges of ``node``."""
        start, stop = int(self.indptr[node]), int(self.indptr[node + 1])
        return self.indices[start:stop], self.edge_ids[start:stop]

    def out_degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])


@dataclass(frozen=True)
class CSCMatrix:
    """Compressed sparse column adjacency.

    ``indptr[i]:indptr[i+1]`` indexes the in-edges of node ``i`` inside
    ``indices`` (source ids) and ``edge_ids``.
    """

    num_nodes: int
    indptr: np.ndarray
    indices: np.ndarray
    edge_ids: np.ndarray

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def column(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, edge_ids)`` for the in-edges of ``node``."""
        start, stop = int(self.indptr[node]), int(self.indptr[node + 1])
        return self.indices[start:stop], self.edge_ids[start:stop]

    def in_degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])


def _compress(keys: np.ndarray, values: np.ndarray, num_nodes: int):
    """Stable counting-sort of ``(keys, values)`` into indptr/indices arrays."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    counts = np.bincount(sorted_keys, minlength=num_nodes) if keys.size else np.zeros(
        num_nodes, dtype=np.int64
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, values[order], order.astype(np.int64)


def to_csr(graph: Graph) -> CSRMatrix:
    """Convert a graph's COO edge list to CSR (grouped by source node)."""
    indptr, indices, edge_ids = _compress(
        graph.sources, graph.destinations, graph.num_nodes
    )
    return CSRMatrix(
        num_nodes=graph.num_nodes, indptr=indptr, indices=indices, edge_ids=edge_ids
    )


def to_csc(graph: Graph) -> CSCMatrix:
    """Convert a graph's COO edge list to CSC (grouped by destination node)."""
    indptr, indices, edge_ids = _compress(
        graph.destinations, graph.sources, graph.num_nodes
    )
    return CSCMatrix(
        num_nodes=graph.num_nodes, indptr=indptr, indices=indices, edge_ids=edge_ids
    )


def to_coo(csr: CSRMatrix) -> np.ndarray:
    """Expand a CSR matrix back to a ``(num_edges, 2)`` COO edge list.

    Edges are returned in CSR traversal order (sorted by source node); the
    original COO positions remain recoverable via ``csr.edge_ids``.
    """
    sources = np.repeat(np.arange(csr.num_nodes), np.diff(csr.indptr))
    return np.stack([sources, csr.indices], axis=1).astype(np.int64)


def from_dense(adjacency: np.ndarray) -> np.ndarray:
    """Convert a dense 0/1 adjacency matrix to a COO edge list.

    Only used by tests and tiny examples — the accelerator itself never
    materialises dense adjacency.
    """
    adjacency = np.asarray(adjacency)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be a square matrix")
    src, dst = np.nonzero(adjacency)
    return np.stack([src, dst], axis=1).astype(np.int64)
