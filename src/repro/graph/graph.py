"""Core graph data structure used throughout the FlowGNN reproduction.

The paper streams graphs into the accelerator in *raw edge-list (COO) format*
with zero CPU intervention or preprocessing.  ``Graph`` therefore stores the
edge list exactly as it arrives: a ``(num_edges, 2)`` integer array of
``(source, destination)`` pairs, plus optional dense node and edge feature
matrices.  All derived representations (CSR, CSC, degree tables, bank
partitions) are computed lazily by other modules so that the "no
preprocessing" property of the accelerator can be evaluated honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "GraphValidationError"]


class GraphValidationError(ValueError):
    """Raised when a :class:`Graph` is constructed from inconsistent arrays."""


def _as_int_array(values: Iterable[int], name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.int64)
    if array.ndim != 2 or (array.size and array.shape[1] != 2):
        raise GraphValidationError(
            f"{name} must have shape (num_edges, 2); got {array.shape}"
        )
    return array.reshape(-1, 2)


def _as_feature_matrix(values, rows: int, name: str) -> Optional[np.ndarray]:
    if values is None:
        return None
    matrix = np.asarray(values, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise GraphValidationError(f"{name} must be 2-dimensional; got {matrix.ndim}D")
    if matrix.shape[0] != rows:
        raise GraphValidationError(
            f"{name} has {matrix.shape[0]} rows but expected {rows}"
        )
    return matrix


@dataclass(frozen=True)
class Graph:
    """An attributed directed graph in raw COO form.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Node ids are the contiguous integers
        ``0 .. num_nodes - 1``.
    edge_index:
        ``(num_edges, 2)`` array of ``(source, destination)`` pairs.  Multiple
        edges and self loops are permitted (GNN datasets contain both).
    node_features:
        Optional ``(num_nodes, F)`` dense feature matrix.
    edge_features:
        Optional ``(num_edges, D)`` dense edge-feature matrix.  Edge features
        are the capability that distinguishes FlowGNN from SpMM-style
        accelerators, so the class keeps them first-class.
    graph_label:
        Optional scalar or vector label, carried through untouched.
    name:
        Optional identifier, used in experiment reports.
    """

    num_nodes: int
    edge_index: np.ndarray
    node_features: Optional[np.ndarray] = None
    edge_features: Optional[np.ndarray] = None
    graph_label: Optional[np.ndarray] = None
    name: str = ""
    _degree_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        edge_index = _as_int_array(self.edge_index, "edge_index")
        object.__setattr__(self, "edge_index", edge_index)
        if self.num_nodes < 0:
            raise GraphValidationError("num_nodes must be non-negative")
        if edge_index.size:
            low = int(edge_index.min())
            high = int(edge_index.max())
            if low < 0 or high >= self.num_nodes:
                raise GraphValidationError(
                    "edge_index refers to node ids outside "
                    f"[0, {self.num_nodes - 1}]: range [{low}, {high}]"
                )
        node_features = _as_feature_matrix(
            self.node_features, self.num_nodes, "node_features"
        )
        edge_features = _as_feature_matrix(
            self.edge_features, edge_index.shape[0], "edge_features"
        )
        object.__setattr__(self, "node_features", node_features)
        object.__setattr__(self, "edge_features", edge_features)
        if self.graph_label is not None:
            object.__setattr__(
                self, "graph_label", np.atleast_1d(np.asarray(self.graph_label))
            )

    # ------------------------------------------------------------------
    # Basic shape accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.edge_index.shape[0])

    @property
    def node_feature_dim(self) -> int:
        """Width of the node-feature matrix (0 when absent)."""
        if self.node_features is None:
            return 0
        return int(self.node_features.shape[1])

    @property
    def edge_feature_dim(self) -> int:
        """Width of the edge-feature matrix (0 when absent)."""
        if self.edge_features is None:
            return 0
        return int(self.edge_features.shape[1])

    @property
    def has_edge_features(self) -> bool:
        return self.edge_feature_dim > 0

    @property
    def sources(self) -> np.ndarray:
        """Source node id of every edge."""
        return self.edge_index[:, 0]

    @property
    def destinations(self) -> np.ndarray:
        """Destination node id of every edge."""
        return self.edge_index[:, 1]

    # ------------------------------------------------------------------
    # Degree utilities
    # ------------------------------------------------------------------
    def in_degrees(self) -> np.ndarray:
        """In-degree of each node (messages received during gather)."""
        if "in" not in self._degree_cache:
            counts = np.bincount(self.destinations, minlength=self.num_nodes)
            self._degree_cache["in"] = counts.astype(np.int64)
        return self._degree_cache["in"]

    def out_degrees(self) -> np.ndarray:
        """Out-degree of each node (messages sent during scatter)."""
        if "out" not in self._degree_cache:
            counts = np.bincount(self.sources, minlength=self.num_nodes)
            self._degree_cache["out"] = counts.astype(np.int64)
        return self._degree_cache["out"]

    def average_degree(self) -> float:
        """Mean in-degree; equals mean out-degree for any directed graph."""
        if self.num_nodes == 0:
            return 0.0
        return self.num_edges / self.num_nodes

    def neighbors(self, node: int) -> np.ndarray:
        """Out-neighbourhood of ``node`` (destination ids of its edges)."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        return self.destinations[self.sources == node]

    def in_neighbors(self, node: int) -> np.ndarray:
        """In-neighbourhood of ``node`` (source ids of edges pointing at it)."""
        if not 0 <= node < self.num_nodes:
            raise IndexError(f"node {node} out of range [0, {self.num_nodes})")
        return self.sources[self.destinations == node]

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_node_features(self, node_features: np.ndarray) -> "Graph":
        """Return a copy of this graph with replaced node features."""
        return Graph(
            num_nodes=self.num_nodes,
            edge_index=self.edge_index,
            node_features=node_features,
            edge_features=self.edge_features,
            graph_label=self.graph_label,
            name=self.name,
        )

    def with_edge_features(self, edge_features: Optional[np.ndarray]) -> "Graph":
        """Return a copy of this graph with replaced edge features."""
        return Graph(
            num_nodes=self.num_nodes,
            edge_index=self.edge_index,
            node_features=self.node_features,
            edge_features=edge_features,
            graph_label=self.graph_label,
            name=self.name,
        )

    def reversed(self) -> "Graph":
        """Return the graph with every edge direction flipped.

        Used when switching between the NT-to-MP (scatter along out-edges)
        and MP-to-NT (gather along in-edges) dataflows.
        """
        flipped = self.edge_index[:, ::-1].copy()
        return Graph(
            num_nodes=self.num_nodes,
            edge_index=flipped,
            node_features=self.node_features,
            edge_features=self.edge_features,
            graph_label=self.graph_label,
            name=self.name,
        )

    def add_self_loops(self) -> "Graph":
        """Return a copy with one self loop appended for every node.

        GCN-style normalisation uses ``A + I``; the paper's GCN kernel adds
        the identity contribution during aggregation.  Newly added self-loop
        edges receive zero edge features when edge features are present.
        """
        loops = np.arange(self.num_nodes, dtype=np.int64)
        loop_edges = np.stack([loops, loops], axis=1)
        edge_index = np.concatenate([self.edge_index, loop_edges], axis=0)
        edge_features = self.edge_features
        if edge_features is not None:
            pad = np.zeros((self.num_nodes, edge_features.shape[1]))
            edge_features = np.concatenate([edge_features, pad], axis=0)
        return Graph(
            num_nodes=self.num_nodes,
            edge_index=edge_index,
            node_features=self.node_features,
            edge_features=edge_features,
            graph_label=self.graph_label,
            name=self.name,
        )

    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph over ``nodes``; node ids are relabelled 0..k-1."""
        nodes = np.asarray(sorted(set(int(n) for n in nodes)), dtype=np.int64)
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.num_nodes):
            raise IndexError("subgraph nodes out of range")
        remap = -np.ones(self.num_nodes, dtype=np.int64)
        remap[nodes] = np.arange(nodes.size)
        keep = (remap[self.sources] >= 0) & (remap[self.destinations] >= 0)
        edge_index = np.stack(
            [remap[self.sources[keep]], remap[self.destinations[keep]]], axis=1
        )
        node_features = (
            self.node_features[nodes] if self.node_features is not None else None
        )
        edge_features = (
            self.edge_features[keep] if self.edge_features is not None else None
        )
        return Graph(
            num_nodes=int(nodes.size),
            edge_index=edge_index,
            node_features=node_features,
            edge_features=edge_features,
            name=f"{self.name}/subgraph" if self.name else "subgraph",
        )

    def with_virtual_node(self) -> Tuple["Graph", int]:
        """Append a virtual node connected bidirectionally to every node.

        Returns the augmented graph and the id of the virtual node.  The
        virtual node starts with zero features, and virtual edges carry zero
        edge features, mirroring the paper's VN model.
        """
        vn = self.num_nodes
        nodes = np.arange(self.num_nodes, dtype=np.int64)
        to_vn = np.stack([nodes, np.full_like(nodes, vn)], axis=1)
        from_vn = np.stack([np.full_like(nodes, vn), nodes], axis=1)
        edge_index = np.concatenate([self.edge_index, to_vn, from_vn], axis=0)
        node_features = self.node_features
        if node_features is not None:
            node_features = np.concatenate(
                [node_features, np.zeros((1, node_features.shape[1]))], axis=0
            )
        edge_features = self.edge_features
        if edge_features is not None:
            pad = np.zeros((2 * self.num_nodes, edge_features.shape[1]))
            edge_features = np.concatenate([edge_features, pad], axis=0)
        graph = Graph(
            num_nodes=self.num_nodes + 1,
            edge_index=edge_index,
            node_features=node_features,
            edge_features=edge_features,
            graph_label=self.graph_label,
            name=self.name,
        )
        return graph, vn

    # ------------------------------------------------------------------
    # Descriptive helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary used in logs and experiment reports."""
        return (
            f"Graph(name={self.name or 'unnamed'!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, node_dim={self.node_feature_dim}, "
            f"edge_dim={self.edge_feature_dim})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
