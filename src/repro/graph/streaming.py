"""Graph streaming: the real-time, batch-size-1 input model of the paper.

FlowGNN's target applications (high-energy-physics triggers, LIDAR point
clouds) deliver graphs one at a time at a fixed arrival rate, and every graph
must be processed before buffers overflow.  ``GraphStream`` models that
arrival process; ``StreamStatistics`` summarises what a consumer achieved
against it (latency distribution, deadline misses, buffer occupancy).
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from .graph import Graph

__all__ = [
    "GraphStream",
    "StreamStatistics",
    "simulate_stream_consumption",
    "queue_depths_at_arrivals",
]


@dataclass
class GraphStream:
    """A finite sequence of graphs with optional arrival timestamps.

    Parameters
    ----------
    graphs:
        The graphs, in arrival order.
    arrival_interval_s:
        Fixed inter-arrival time in seconds.  ``None`` means graphs are
        available immediately (back-to-back processing, the default for
        latency measurements).
    """

    graphs: Sequence[Graph]
    arrival_interval_s: Optional[float] = None
    name: str = "stream"

    def __post_init__(self) -> None:
        # Snapshot into an immutable tuple: a generator-backed ``graphs``
        # would be exhausted by whichever consumer iterates first (arrival
        # bookkeeping, ``total_nodes``, each replica of a serving cluster),
        # and a caller-held list could shrink between the arrival-time
        # computation and consumption.  One stream must mean the same
        # sequence of graphs to every consumer.
        self.graphs = tuple(self.graphs)

    def __len__(self) -> int:
        return len(self.graphs)

    def __iter__(self) -> Iterator[Graph]:
        return iter(self.graphs)

    def arrival_times(self) -> np.ndarray:
        """Arrival timestamp (seconds) of each graph."""
        if self.arrival_interval_s is None:
            return np.zeros(len(self.graphs))
        return np.arange(len(self.graphs)) * float(self.arrival_interval_s)

    def total_nodes(self) -> int:
        return int(sum(g.num_nodes for g in self.graphs))

    def total_edges(self) -> int:
        return int(sum(g.num_edges for g in self.graphs))


@dataclass
class StreamStatistics:
    """Outcome of consuming a :class:`GraphStream` with a given latency model."""

    per_graph_latency_s: np.ndarray
    completion_times_s: np.ndarray
    deadline_s: Optional[float] = None
    queue_depth_trace: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean(self.per_graph_latency_s)) if self.per_graph_latency_s.size else 0.0

    @property
    def p99_latency_s(self) -> float:
        if not self.per_graph_latency_s.size:
            return 0.0
        return float(np.percentile(self.per_graph_latency_s, 99))

    @property
    def max_latency_s(self) -> float:
        return float(np.max(self.per_graph_latency_s)) if self.per_graph_latency_s.size else 0.0

    @property
    def throughput_graphs_per_s(self) -> float:
        if not self.completion_times_s.size:
            return 0.0
        makespan = float(self.completion_times_s[-1])
        if makespan <= 0:
            return float("inf")
        return len(self.completion_times_s) / makespan

    def deadline_miss_count(self) -> int:
        """Number of graphs whose processing latency exceeded the deadline.

        Finishing *exactly* at the deadline is a hit, and the comparison is
        float-tolerant (relative 1e-9): latencies are ``completion - arrival``
        differences, whose rounding noise must not flip the boundary case.
        """
        if self.deadline_s is None:
            return 0
        latencies = self.per_graph_latency_s
        missed = (latencies > self.deadline_s) & ~np.isclose(
            latencies, self.deadline_s, rtol=1e-9, atol=0.0
        )
        return int(np.sum(missed))

    def deadline_miss_rate(self) -> float:
        if self.deadline_s is None or not self.per_graph_latency_s.size:
            return 0.0
        return self.deadline_miss_count() / self.per_graph_latency_s.size

    @property
    def max_queue_depth(self) -> int:
        """Worst-case number of graphs waiting in the input buffer."""
        if not self.queue_depth_trace.size:
            return 0
        return int(np.max(self.queue_depth_trace))


def queue_depths_at_arrivals(
    arrivals: np.ndarray, completions: np.ndarray
) -> np.ndarray:
    """Input-buffer depth observed at each arrival instant.

    Entry ``i`` counts the graphs that arrived no later than graph ``i`` but
    had not yet completed when it arrived.  Both the single-consumer
    simulation below and the per-tenant view of the serving simulator
    (:mod:`repro.serve`) derive their queue traces from this one definition,
    so their statistics agree exactly.
    """
    arrivals = np.asarray(arrivals, dtype=np.float64)
    completions = np.asarray(completions, dtype=np.float64)
    n = len(arrivals)
    depths = np.zeros(n, dtype=np.int64)
    if n > 1 and np.all(np.diff(arrivals) >= 0):
        # Sorted arrivals (every stream and per-tenant serving trace): all
        # i earlier requests have arrived, so the depth is i minus those
        # already completed, read off an incrementally sorted completion
        # list.  insort still shifts list elements (worst case quadratic in
        # memmoves), but lookups are O(log n) and the shifts are a C-level
        # constant factor — orders of magnitude faster than the quadratic
        # mask scan below on the tens of thousands of requests a serving
        # run hands in.
        finished: list = []
        for i in range(n):
            depths[i] = i - bisect_right(finished, arrivals[i])
            insort(finished, completions[i])
        return depths
    for i in range(1, n):
        earlier_arrived = arrivals[:i] <= arrivals[i]
        still_pending = completions[:i] > arrivals[i]
        depths[i] = int(np.sum(earlier_arrived & still_pending))
    return depths


def simulate_stream_consumption(
    stream: GraphStream,
    latency_fn: Callable[[Graph], float],
    deadline_s: Optional[float] = None,
) -> StreamStatistics:
    """Simulate a single consumer draining the stream in arrival order.

    ``latency_fn`` maps a graph to its processing time in seconds (e.g. the
    FlowGNN accelerator's cycle count divided by the clock frequency).  The
    consumer processes graphs strictly in order; a graph that arrives while
    the consumer is busy waits in an unbounded input buffer.  End-to-end
    latency is measured from arrival to completion, so queueing delay counts
    against the deadline — exactly the HEP trigger scenario the paper
    motivates.
    """
    arrivals = stream.arrival_times()
    service_times = np.array([float(latency_fn(g)) for g in stream.graphs])
    completions = np.zeros_like(service_times)

    busy_until = 0.0
    for i, (arrival, service) in enumerate(zip(arrivals, service_times)):
        start = max(arrival, busy_until)
        busy_until = start + service
        completions[i] = busy_until

    queue_depths = queue_depths_at_arrivals(arrivals, completions)
    latencies = completions - arrivals
    return StreamStatistics(
        per_graph_latency_s=latencies,
        completion_times_s=completions,
        deadline_s=deadline_s,
        queue_depth_trace=queue_depths,
    )
