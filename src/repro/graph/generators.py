"""Random graph generators used to synthesise the paper's workloads.

Four families cover every dataset in Table IV:

* **Erdős–Rényi** graphs — generic sparse random graphs, used in tests.
* **Barabási–Albert / power-law** graphs — citation networks (Cora,
  CiteSeer, PubMed) and the Reddit social graph, which have heavy-tailed
  degree distributions.
* **k-nearest-neighbour point clouds** — the High Energy Physics jets are
  built with the EdgeConv recipe (k = 16) over particle coordinates.
* **Molecule-like graphs** — small, nearly-planar graphs with low maximum
  degree and categorical bond (edge) features, standing in for MolHIV and
  MolPCBA.

Every generator takes an explicit ``numpy.random.Generator`` so that each
dataset, test and benchmark is reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .graph import Graph

__all__ = [
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "powerlaw_cluster_graph",
    "knn_point_cloud_graph",
    "molecule_like_graph",
    "random_features",
]


def random_features(
    rng: np.random.Generator, rows: int, dim: int, scale: float = 1.0
) -> np.ndarray:
    """Dense standard-normal feature matrix, the common case for inputs."""
    return rng.standard_normal((rows, dim)) * scale


def _undirected_to_directed(pairs: np.ndarray) -> np.ndarray:
    """Expand undirected edge pairs to both directed orientations."""
    if pairs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    return np.concatenate([pairs, pairs[:, ::-1]], axis=0).astype(np.int64)


def erdos_renyi_graph(
    num_nodes: int,
    edge_probability: float,
    rng: np.random.Generator,
    node_feature_dim: int = 0,
    edge_feature_dim: int = 0,
    name: str = "erdos_renyi",
) -> Graph:
    """G(n, p) random graph, returned with both edge directions."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rows, cols = np.triu_indices(num_nodes, k=1)
    mask = rng.random(rows.shape[0]) < edge_probability
    pairs = np.stack([rows[mask], cols[mask]], axis=1)
    edge_index = _undirected_to_directed(pairs)
    return _attach_features(
        num_nodes, edge_index, node_feature_dim, edge_feature_dim, rng, name
    )


def barabasi_albert_graph(
    num_nodes: int,
    attachment: int,
    rng: np.random.Generator,
    node_feature_dim: int = 0,
    edge_feature_dim: int = 0,
    name: str = "barabasi_albert",
) -> Graph:
    """Preferential-attachment graph with ``attachment`` edges per new node.

    Produces the heavy-tailed degree distribution characteristic of citation
    and social networks.
    """
    if attachment < 1:
        raise ValueError("attachment must be >= 1")
    if num_nodes <= attachment:
        raise ValueError("num_nodes must exceed attachment")

    targets = list(range(attachment))
    repeated: list[int] = []
    pairs = []
    for source in range(attachment, num_nodes):
        chosen = set()
        for target in targets:
            chosen.add(target)
        for target in sorted(chosen):
            pairs.append((source, target))
        repeated.extend(chosen)
        repeated.extend([source] * len(chosen))
        # Preferential attachment: sample next targets proportionally to degree.
        if len(repeated) > 0:
            idx = rng.integers(0, len(repeated), size=attachment)
            targets = [repeated[i] for i in idx]
        else:  # pragma: no cover - only reachable with attachment == 0
            targets = list(range(attachment))
    edge_index = _undirected_to_directed(np.asarray(pairs, dtype=np.int64))
    return _attach_features(
        num_nodes, edge_index, node_feature_dim, edge_feature_dim, rng, name
    )


def powerlaw_cluster_graph(
    num_nodes: int,
    attachment: int,
    triangle_probability: float,
    rng: np.random.Generator,
    node_feature_dim: int = 0,
    name: str = "powerlaw_cluster",
) -> Graph:
    """Holme–Kim power-law graph with tunable clustering.

    Citation networks have both a power-law degree distribution and high
    clustering; the triangle-closing step reproduces the latter.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise ValueError("triangle_probability must lie in [0, 1]")
    if num_nodes <= attachment:
        raise ValueError("num_nodes must exceed attachment")

    repeated: list[int] = list(range(attachment))
    edges = set()
    for source in range(attachment, num_nodes):
        # First link by preferential attachment.
        target = int(repeated[rng.integers(0, len(repeated))])
        added = 0
        last_target = target
        while added < attachment:
            if target != source and (source, target) not in edges:
                edges.add((source, target))
                repeated.append(source)
                repeated.append(target)
                last_target = target
                added += 1
            if added >= attachment:
                break
            if rng.random() < triangle_probability:
                # Triangle closure: connect to a neighbour of the last target.
                neighbours = [b for (a, b) in edges if a == last_target] + [
                    a for (a, b) in edges if b == last_target
                ]
                if neighbours:
                    target = int(neighbours[rng.integers(0, len(neighbours))])
                else:
                    target = int(repeated[rng.integers(0, len(repeated))])
            else:
                target = int(repeated[rng.integers(0, len(repeated))])
    pairs = np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)
    edge_index = _undirected_to_directed(pairs)
    return _attach_features(num_nodes, edge_index, node_feature_dim, 0, rng, name)


def knn_point_cloud_graph(
    num_points: int,
    k: int,
    rng: np.random.Generator,
    spatial_dim: int = 3,
    node_feature_dim: int = 0,
    edge_feature_dim: int = 0,
    name: str = "knn_point_cloud",
) -> Graph:
    """k-nearest-neighbour graph over random points (EdgeConv construction).

    Each point receives directed edges from its ``k`` nearest neighbours,
    mirroring how the HEP jet graphs in the paper are built (k = 16).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if num_points <= 1:
        raise ValueError("num_points must be >= 2")
    k = min(k, num_points - 1)

    points = rng.standard_normal((num_points, spatial_dim))
    # Pairwise squared distances; num_points is small (tens to hundreds).
    deltas = points[:, None, :] - points[None, :, :]
    distances = np.einsum("ijk,ijk->ij", deltas, deltas)
    np.fill_diagonal(distances, np.inf)
    neighbour_ids = np.argsort(distances, axis=1)[:, :k]

    destinations = np.repeat(np.arange(num_points, dtype=np.int64), k)
    sources = neighbour_ids.reshape(-1).astype(np.int64)
    edge_index = np.stack([sources, destinations], axis=1)

    node_features = None
    if node_feature_dim:
        # Point coordinates become the leading node features (physical inputs).
        extra = max(node_feature_dim - spatial_dim, 0)
        pad = rng.standard_normal((num_points, extra)) if extra else np.zeros(
            (num_points, 0)
        )
        node_features = np.concatenate([points, pad], axis=1)[:, :node_feature_dim]
    edge_features = None
    if edge_feature_dim:
        # EdgeConv edge features are relative displacements.
        rel = points[sources] - points[destinations]
        extra = max(edge_feature_dim - spatial_dim, 0)
        pad = (
            rng.standard_normal((edge_index.shape[0], extra))
            if extra
            else np.zeros((edge_index.shape[0], 0))
        )
        edge_features = np.concatenate([rel, pad], axis=1)[:, :edge_feature_dim]

    return Graph(
        num_nodes=num_points,
        edge_index=edge_index,
        node_features=node_features,
        edge_features=edge_features,
        name=name,
    )


def molecule_like_graph(
    num_atoms: int,
    rng: np.random.Generator,
    node_feature_dim: int = 9,
    edge_feature_dim: int = 3,
    extra_bond_probability: float = 0.15,
    name: str = "molecule",
) -> Graph:
    """Small molecule-like graph: a random tree plus a few ring-closing bonds.

    Real molecules are connected, sparse (average degree ≈ 2.2) and have a
    small number of rings.  A uniform random spanning tree plus a handful of
    extra bonds reproduces those statistics, and categorical "bond type"
    features are attached to every edge.
    """
    if num_atoms < 1:
        raise ValueError("num_atoms must be >= 1")

    pairs = []
    for node in range(1, num_atoms):
        parent = int(rng.integers(0, node))
        pairs.append((parent, node))
    # Ring closures: extra bonds between non-adjacent atoms.
    num_extra = int(np.floor(extra_bond_probability * num_atoms))
    existing = set(pairs)
    attempts = 0
    while num_extra > 0 and attempts < 20 * num_atoms and num_atoms > 2:
        a, b = rng.integers(0, num_atoms, size=2)
        attempts += 1
        if a == b:
            continue
        key = (min(int(a), int(b)), max(int(a), int(b)))
        if key in existing:
            continue
        existing.add(key)
        pairs.append(key)
        num_extra -= 1

    edge_index = _undirected_to_directed(np.asarray(pairs, dtype=np.int64))

    node_features = None
    if node_feature_dim:
        # Categorical atom types one-hot encoded into the leading columns.
        atom_types = rng.integers(0, min(node_feature_dim, 8), size=num_atoms)
        node_features = np.zeros((num_atoms, node_feature_dim))
        node_features[np.arange(num_atoms), atom_types] = 1.0
    edge_features = None
    if edge_feature_dim:
        bond_types = rng.integers(0, edge_feature_dim, size=edge_index.shape[0])
        edge_features = np.zeros((edge_index.shape[0], edge_feature_dim))
        edge_features[np.arange(edge_index.shape[0]), bond_types] = 1.0

    return Graph(
        num_nodes=num_atoms,
        edge_index=edge_index,
        node_features=node_features,
        edge_features=edge_features,
        name=name,
    )


def _attach_features(
    num_nodes: int,
    edge_index: np.ndarray,
    node_feature_dim: int,
    edge_feature_dim: int,
    rng: np.random.Generator,
    name: str,
) -> Graph:
    node_features: Optional[np.ndarray] = None
    edge_features: Optional[np.ndarray] = None
    if node_feature_dim:
        node_features = random_features(rng, num_nodes, node_feature_dim)
    if edge_feature_dim:
        edge_features = random_features(rng, edge_index.shape[0], edge_feature_dim)
    return Graph(
        num_nodes=num_nodes,
        edge_index=edge_index,
        node_features=node_features,
        edge_features=edge_features,
        name=name,
    )
