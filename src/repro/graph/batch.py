"""Disjoint-union batching of graphs.

FlowGNN itself never batches: graphs are streamed in one at a time so that
each graph's result is available as early as possible (real-time constraint).
The CPU/GPU baselines, however, amortise kernel-launch overhead by packing
``batch_size`` graphs into one disjoint union — exactly how PyTorch-Geometric
builds mini-batches.  This module implements that packing so that the GPU
latency model can reason about batched workloads, and so tests can verify
that batching does not change any per-graph GNN output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from .graph import Graph

__all__ = ["BatchedGraph", "batch_graphs", "unbatch_node_values", "iter_batches"]


@dataclass(frozen=True)
class BatchedGraph:
    """A disjoint union of several graphs plus bookkeeping to split it back."""

    graph: Graph
    graph_sizes: np.ndarray  # number of nodes per member graph
    edge_counts: np.ndarray  # number of edges per member graph
    node_to_graph: np.ndarray  # graph index of every node in the union

    @property
    def num_graphs(self) -> int:
        return int(self.graph_sizes.shape[0])

    def node_slice(self, index: int) -> slice:
        """Slice of the union's node axis belonging to member ``index``."""
        offsets = np.concatenate([[0], np.cumsum(self.graph_sizes)])
        return slice(int(offsets[index]), int(offsets[index + 1]))

    def edge_slice(self, index: int) -> slice:
        """Slice of the union's edge axis belonging to member ``index``."""
        offsets = np.concatenate([[0], np.cumsum(self.edge_counts)])
        return slice(int(offsets[index]), int(offsets[index + 1]))


def batch_graphs(graphs: Sequence[Graph]) -> BatchedGraph:
    """Pack ``graphs`` into one disjoint-union :class:`Graph`.

    Node ids of graph ``k`` are shifted by the total node count of graphs
    ``0..k-1``.  Feature matrices are concatenated; a batch may only mix
    graphs whose node (and edge) feature widths agree.
    """
    if not graphs:
        raise ValueError("cannot batch an empty list of graphs")

    node_dims = {g.node_feature_dim for g in graphs}
    edge_dims = {g.edge_feature_dim for g in graphs}
    if len(node_dims) != 1:
        raise ValueError(f"inconsistent node feature dims in batch: {node_dims}")
    if len(edge_dims) != 1:
        raise ValueError(f"inconsistent edge feature dims in batch: {edge_dims}")

    sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
    edge_counts = np.array([g.num_edges for g in graphs], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])

    edge_blocks: List[np.ndarray] = []
    for graph, offset in zip(graphs, offsets):
        edge_blocks.append(graph.edge_index + offset)
    edge_index = (
        np.concatenate(edge_blocks, axis=0)
        if edge_blocks
        else np.zeros((0, 2), dtype=np.int64)
    )

    node_features = None
    if node_dims != {0}:
        node_features = np.concatenate([g.node_features for g in graphs], axis=0)
    edge_features = None
    if edge_dims != {0}:
        edge_features = np.concatenate(
            [
                g.edge_features
                if g.edge_features is not None
                else np.zeros((0, next(iter(edge_dims))))
                for g in graphs
            ],
            axis=0,
        )

    union = Graph(
        num_nodes=int(sizes.sum()),
        edge_index=edge_index,
        node_features=node_features,
        edge_features=edge_features,
        name=f"batch[{len(graphs)}]",
    )
    node_to_graph = np.repeat(np.arange(len(graphs), dtype=np.int64), sizes)
    return BatchedGraph(
        graph=union,
        graph_sizes=sizes,
        edge_counts=edge_counts,
        node_to_graph=node_to_graph,
    )


def unbatch_node_values(batch: BatchedGraph, values: np.ndarray) -> List[np.ndarray]:
    """Split a per-node value array of the union back into per-graph arrays."""
    values = np.asarray(values)
    if values.shape[0] != batch.graph.num_nodes:
        raise ValueError(
            f"values has {values.shape[0]} rows, expected {batch.graph.num_nodes}"
        )
    return [values[batch.node_slice(i)] for i in range(batch.num_graphs)]


def iter_batches(
    graphs: Iterable[Graph], batch_size: int
) -> Iterator[BatchedGraph]:
    """Yield :class:`BatchedGraph` unions of at most ``batch_size`` members."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    bucket: List[Graph] = []
    for graph in graphs:
        bucket.append(graph)
        if len(bucket) == batch_size:
            yield batch_graphs(bucket)
            bucket = []
    if bucket:
        yield batch_graphs(bucket)
