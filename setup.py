"""Legacy setup shim.

Allows ``pip install -e .`` in offline environments that lack the ``wheel``
package (pip falls back to ``setup.py develop`` with ``--no-use-pep517``).
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
