"""Packaging for the FlowGNN reproduction.

Kept as a plain ``setup.py`` (no build isolation required) so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package — pip falls back to ``setup.py develop``.

The version is single-sourced from ``repro.__version__`` by parsing the
assignment out of ``src/repro/__init__.py`` — parsing, not importing, so
``setup.py`` never needs numpy installed to build a dist.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    init_path = os.path.join(here, "src", "repro", "__init__.py")
    with open(init_path) as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.MULTILINE)
    if match is None:
        raise RuntimeError(f"no __version__ assignment found in {init_path}")
    return match.group(1)


setup(
    name="flowgnn-repro",
    version=read_version(),
    description=(
        "Cycle-level reproduction of FlowGNN (HPCA 2023): a dataflow "
        "architecture for real-time GNN inference, with a parallel "
        "design-space exploration engine, a multi-tenant serving simulator, "
        "a serving-scenario sweep engine for capacity planning, and a "
        "longitudinal results store with static HTML reporting"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.results": ["templates/*.html"]},
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
