"""Packaging for the FlowGNN reproduction.

Kept as a plain ``setup.py`` (no build isolation required) so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package — pip falls back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="flowgnn-repro",
    version="1.6.0",
    description=(
        "Cycle-level reproduction of FlowGNN (HPCA 2023): a dataflow "
        "architecture for real-time GNN inference, with a parallel "
        "design-space exploration engine, a multi-tenant serving simulator "
        "and a serving-scenario sweep engine for capacity planning"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
